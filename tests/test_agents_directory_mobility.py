"""Unit tests for the directory facilitator and agent mobility."""

import pytest

from repro.agents.acl import ACLMessage, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.agents.directory import DirectoryFacilitator, ServiceDescription
from repro.agents.mobility import MigrationError, MobilityService
from repro.agents.platform import AgentPlatform


class TestDirectory:
    @pytest.fixture
    def directory(self, sim):
        return DirectoryFacilitator(sim)

    def test_register_and_search_services(self, directory):
        directory.register(ServiceDescription("a1", "analysis", {"level": 2}))
        directory.register(ServiceDescription("a2", "analysis"))
        directory.register(ServiceDescription("s1", "storage"))
        found = directory.search("analysis")
        assert [d.agent_name for d in found] == ["a1", "a2"]

    def test_search_with_predicate(self, directory):
        directory.register(ServiceDescription("a1", "analysis", {"level": 2}))
        directory.register(ServiceDescription("a2", "analysis", {"level": 3}))
        found = directory.search(
            "analysis", predicate=lambda d: d.properties.get("level") == 3)
        assert [d.agent_name for d in found] == ["a2"]

    def test_deregister_by_type_and_all(self, directory):
        directory.register(ServiceDescription("a1", "analysis"))
        directory.register(ServiceDescription("a1", "storage"))
        directory.deregister("a1", "analysis")
        assert directory.search("analysis") == []
        assert len(directory.services_of("a1")) == 1
        directory.deregister("a1")
        assert directory.services_of("a1") == []

    def test_empty_service_type_rejected(self):
        with pytest.raises(ValueError):
            ServiceDescription("a", "")

    def test_container_profiles_filtered(self, sim, network, transport):
        platform = AgentPlatform(sim, network, transport)
        host_a = network.add_host("ha", "site1")
        host_b = network.add_host("hb", "site1")
        container_a = platform.create_container(
            "ca", host_a, services=("analysis",), knowledge=("traffic",))
        container_b = platform.create_container(
            "cb", host_b, services=("storage",))
        directory = DirectoryFacilitator(sim)
        directory.register_container_profile(container_a.profile())
        directory.register_container_profile(container_b.profile())
        assert len(directory) == 2
        analysis = directory.container_profiles(service="analysis")
        assert [p.container_name for p in analysis] == ["ca"]
        knowing = directory.container_profiles(knowledge="traffic")
        assert {p.container_name for p in knowing} == {"ca", "cb"}
        directory.remove_container_profile("ca")
        assert directory.container_profile("ca") is None

    def test_reregistration_updates(self, sim, network, transport):
        platform = AgentPlatform(sim, network, transport)
        host = network.add_host("h", "site1")
        container = platform.create_container("c", host)
        directory = DirectoryFacilitator(sim)
        directory.register_container_profile(container.profile())
        container.busy_agents = 3
        directory.register_container_profile(container.profile())
        assert len(directory) == 1
        assert directory.container_profile("c").busy_agents == 3


class _StatefulAgent(Agent):
    """Carries custom state across migrations and counts setups."""

    def __init__(self, name):
        super().__init__(name)
        self.counter = 0
        self.setups = 0

    def setup(self):
        self.setups += 1

    def checkpoint(self):
        state = super().checkpoint()
        state["counter"] = self.counter
        return state

    def restore(self, state):
        super().restore(state)
        self.counter = state["counter"]


class TestMobility:
    @pytest.fixture
    def world(self, sim, network, transport):
        platform = AgentPlatform(sim, network, transport)
        host_a = network.add_host("ha", "site1")
        host_b = network.add_host("hb", "site2")
        container_a = platform.create_container("ca", host_a)
        container_b = platform.create_container("cb", host_b)
        return platform, container_a, container_b

    def test_migration_moves_state_and_restarts(self, sim, world):
        platform, container_a, container_b = world
        agent = _StatefulAgent("mobile")
        container_a.deploy(agent)
        agent.counter = 41
        mobility = MobilityService(platform)

        def migrate():
            yield from mobility.migrate(agent, container_b)
            return "done"

        process = sim.spawn(migrate())
        sim.run(until=60)
        assert process.result == "done"
        assert agent.container is container_b
        assert agent.counter == 41
        assert agent.setups == 2
        assert mobility.migrations == 1

    def test_migration_charges_cpu_and_network(self, sim, world):
        platform, container_a, container_b = world
        agent = _StatefulAgent("mobile")
        container_a.deploy(agent)
        mobility = MobilityService(platform, serialize_cpu_per_unit=1.0)

        def migrate():
            yield from mobility.migrate(agent, container_b)

        sim.spawn(migrate())
        sim.run(until=60)
        assert container_a.host.cpu.units_by_label["agent-migration"] > 0
        assert container_b.host.cpu.units_by_label["agent-migration"] > 0
        assert container_a.host.nic.total_units > 0

    def test_pending_mail_travels(self, sim, world):
        platform, container_a, container_b = world
        agent = _StatefulAgent("mobile")
        container_a.deploy(agent)
        agent.deliver(ACLMessage(Performative.INFORM, "x", "mobile", content=9))
        mobility = MobilityService(platform)

        def migrate():
            yield from mobility.migrate(agent, container_b)

        sim.spawn(migrate())
        sim.run(until=60)
        assert agent.mailbox_size == 1
        assert agent.receive_nowait().content == 9

    def test_migrating_to_same_container_is_noop(self, sim, world):
        platform, container_a, _ = world
        agent = _StatefulAgent("mobile")
        container_a.deploy(agent)
        mobility = MobilityService(platform)

        def migrate():
            yield from mobility.migrate(agent, container_a)

        sim.spawn(migrate())
        sim.run(until=60)
        assert agent.setups == 1
        assert mobility.migrations == 0

    def test_migration_to_dead_container_rejected(self, sim, world):
        platform, container_a, container_b = world
        agent = _StatefulAgent("mobile")
        container_a.deploy(agent)
        container_b.shutdown()
        mobility = MobilityService(platform)

        def migrate():
            try:
                yield from mobility.migrate(agent, container_b)
            except MigrationError:
                return "refused"

        process = sim.spawn(migrate())
        sim.run(until=60)
        assert process.result == "refused"
        assert agent.container is container_a

    def test_undeployed_agent_rejected(self, sim, world):
        platform, _, container_b = world
        mobility = MobilityService(platform)
        with pytest.raises(MigrationError):
            # migrate() raises before the first yield runs
            generator = mobility.migrate(_StatefulAgent("ghost"), container_b)
            next(generator)

    def test_messages_reach_agent_after_migration(self, sim, world):
        platform, container_a, container_b = world
        received = []

        class Listener(_StatefulAgent):
            def setup(self):
                super().setup()
                agent = self

                class Collect(CyclicBehaviour):
                    def step(self):
                        message = yield from self.receive()
                        if message is not None:
                            received.append(message.content)

                self.add_behaviour(Collect())

        listener = Listener("mobile")
        sender = Agent("sender")
        container_a.deploy(listener)
        container_b.deploy(sender)
        mobility = MobilityService(platform)

        def script():
            yield from mobility.migrate(listener, container_b)
            sender.send(ACLMessage(
                Performative.INFORM, "sender", "mobile", content="hello"))
            yield 1.0

        sim.spawn(script())
        sim.run(until=60)
        assert "hello" in received
