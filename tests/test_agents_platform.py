"""Unit tests for agents, containers, the platform and behaviours."""

import pytest

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import (
    CyclicBehaviour,
    FSMBehaviour,
    OneShotBehaviour,
    TickerBehaviour,
)
from repro.agents.platform import AgentPlatform, PlatformError


class Recorder(Agent):
    """Collects everything it receives."""

    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def setup(self):
        agent = self

        class Collect(CyclicBehaviour):
            def step(self):
                message = yield from self.receive()
                if message is not None:
                    agent.got.append(message)

        self.add_behaviour(Collect())


@pytest.fixture
def deployment(sim, network, transport):
    platform = AgentPlatform(sim, network, transport)
    host_a = network.add_host("ha", "site1")
    host_b = network.add_host("hb", "site1")
    container_a = platform.create_container("ca", host_a)
    container_b = platform.create_container("cb", host_b)
    return platform, container_a, container_b


class TestPlatformRouting:
    def test_interhost_message_charges_nics(self, sim, deployment):
        platform, container_a, container_b = deployment
        sender, receiver = Recorder("send"), Recorder("recv")
        container_a.deploy(sender)
        container_b.deploy(receiver)
        sender.send(ACLMessage(
            Performative.INFORM, "send", "recv", size_units=4.0,
        ))
        sim.run(until=10)
        assert len(receiver.got) == 1
        assert container_a.host.nic.total_units == 4.0
        assert container_b.host.nic.total_units == 4.0

    def test_intrahost_message_is_free(self, sim, deployment):
        platform, container_a, _ = deployment
        sender, receiver = Recorder("send"), Recorder("recv")
        container_a.deploy(sender)
        container_a.deploy(receiver)
        sender.send(ACLMessage(
            Performative.INFORM, "send", "recv", size_units=4.0,
        ))
        sim.run(until=10)
        assert len(receiver.got) == 1
        assert container_a.host.nic.total_units == 0.0

    def test_unknown_receiver_bounces_failure(self, sim, deployment):
        platform, container_a, _ = deployment
        sender = Recorder("send")
        container_a.deploy(sender)
        sender.send(ACLMessage(Performative.INFORM, "send", "ghost"))
        sim.run(until=10)
        assert len(sender.got) == 1
        assert sender.got[0].performative == Performative.FAILURE
        assert platform.messages_failed == 1

    def test_duplicate_agent_name_rejected(self, sim, deployment):
        platform, container_a, container_b = deployment
        container_a.deploy(Recorder("same"))
        with pytest.raises(PlatformError):
            container_b.deploy(Recorder("same"))

    def test_duplicate_container_name_rejected(self, sim, network, deployment):
        platform, _, _ = deployment
        host = network.add_host("hx", "site1")
        with pytest.raises(PlatformError):
            platform.create_container("ca", host)

    def test_stats_and_lookup(self, sim, deployment):
        platform, container_a, container_b = deployment
        agent = Recorder("a1")
        container_a.deploy(agent)
        assert platform.agent("a1") is agent
        assert platform.container_of("a1") is container_a
        assert "a1" in platform.agent_names()
        stats = platform.stats()
        assert stats["agents"] == 1
        assert stats["containers"] == 2


class TestAgentMailbox:
    def test_receive_matches_template(self, sim, deployment):
        platform, container_a, _ = deployment
        agent = Agent("a")
        container_a.deploy(agent)
        results = {}

        def waiter():
            message = yield from agent.receive(
                MessageTemplate(performative=Performative.CFP))
            results["got"] = message

        sim.spawn(waiter())
        agent.deliver(ACLMessage(Performative.INFORM, "x", "a"))
        agent.deliver(ACLMessage(Performative.CFP, "x", "a"))
        sim.run(until=5)
        assert results["got"].performative == Performative.CFP
        assert agent.mailbox_size == 1  # the INFORM stayed queued

    def test_receive_timeout_returns_none(self, sim, deployment):
        platform, container_a, _ = deployment
        agent = Agent("a")
        container_a.deploy(agent)

        def waiter():
            message = yield from agent.receive(timeout=2.0)
            return (message, sim.now)

        process = sim.spawn(waiter())
        sim.run(until=10)
        assert process.result == (None, 2.0)

    def test_receive_nowait(self, sim, deployment):
        platform, container_a, _ = deployment
        agent = Agent("a")
        container_a.deploy(agent)
        assert agent.receive_nowait() is None
        agent.deliver(ACLMessage(Performative.INFORM, "x", "a"))
        assert agent.receive_nowait() is not None
        assert agent.receive_nowait() is None

    def test_queued_message_served_before_waiting(self, sim, deployment):
        platform, container_a, _ = deployment
        agent = Agent("a")
        container_a.deploy(agent)
        agent.deliver(ACLMessage(Performative.INFORM, "x", "a", content=1))

        def waiter():
            message = yield from agent.receive()
            return message.content

        process = sim.spawn(waiter())
        sim.run(until=5)
        assert process.result == 1


class TestContainers:
    def test_profile_reflects_container(self, sim, deployment):
        platform, container_a, _ = deployment
        container_a.services = ("analysis",)
        container_a.knowledge = ("traffic",)
        profile = container_a.profile()
        assert profile.offers("analysis")
        assert profile.knows("traffic")
        assert not profile.knows("performance")
        assert profile.idle
        assert profile.host_name == "ha"

    def test_generalist_knows_everything(self, sim, deployment):
        platform, container_a, _ = deployment
        profile = container_a.profile()
        assert profile.knowledge == ()
        assert profile.knows("anything")

    def test_profile_ontology_round_trip(self, sim, deployment):
        platform, container_a, _ = deployment
        content = container_a.profile().to_content()
        assert content["container"] == "ca"
        assert content["host"] == "ha"

    def test_shutdown_stops_agents(self, sim, deployment):
        platform, container_a, _ = deployment
        agent = Recorder("doomed")
        container_a.deploy(agent)
        container_a.shutdown()
        assert not agent.alive
        assert platform.agent("doomed") is None
        assert "ca" not in platform.containers
        with pytest.raises(RuntimeError):
            container_a.deploy(Recorder("late"))

    def test_remove_undeployed_agent_rejected(self, sim, deployment):
        platform, container_a, _ = deployment
        with pytest.raises(ValueError):
            container_a.remove(Recorder("never-deployed"))


class TestBehaviours:
    def test_one_shot_runs_once(self, sim, deployment):
        platform, container_a, _ = deployment
        runs = []

        class Once(OneShotBehaviour):
            def action(self):
                yield 1.0
                runs.append(sim.now)

        agent = Agent("a")
        container_a.deploy(agent)
        behaviour = agent.add_behaviour(Once())
        sim.run(until=10)
        assert runs == [1.0]
        assert behaviour.done
        assert behaviour not in agent.behaviours()

    def test_ticker_fires_periodically(self, sim, deployment):
        platform, container_a, _ = deployment
        ticks = []

        class Tick(TickerBehaviour):
            def on_tick(self):
                ticks.append(self.sim.now)
                return
                yield  # pragma: no cover

        agent = Agent("a")
        container_a.deploy(agent)
        agent.add_behaviour(Tick(period=2.0, max_ticks=3))
        sim.run(until=20)
        assert ticks == [2.0, 4.0, 6.0]

    def test_fsm_follows_transitions(self, sim, deployment):
        platform, container_a, _ = deployment
        visited = []

        fsm = FSMBehaviour("machine")

        def start():
            visited.append("start")
            yield 1.0
            return "work"

        def work():
            visited.append("work")
            yield 1.0
            return "end"

        def end():
            visited.append("end")
            return None
            yield  # pragma: no cover

        fsm.register_state("start", start, initial=True)
        fsm.register_state("work", work)
        fsm.register_state("end", end, final=True)
        agent = Agent("a")
        container_a.deploy(agent)
        agent.add_behaviour(fsm)
        sim.run(until=10)
        assert visited == ["start", "work", "end"]
        assert fsm.done

    def test_fsm_unknown_transition_fails(self, sim, deployment):
        platform, container_a, _ = deployment
        fsm = FSMBehaviour()

        def start():
            return "nowhere"
            yield  # pragma: no cover

        fsm.register_state("start", start, initial=True)
        agent = Agent("a")
        container_a.deploy(agent)
        agent.add_behaviour(fsm)
        with pytest.raises(RuntimeError):
            sim.run(until=10)

    def test_cyclic_spin_guard_trips(self, sim, deployment):
        platform, container_a, _ = deployment

        class Spinner(CyclicBehaviour):
            def step(self):
                return
                yield  # pragma: no cover

        agent = Agent("a")
        container_a.deploy(agent)
        agent.add_behaviour(Spinner(max_idle_spins=10))
        with pytest.raises(RuntimeError):
            sim.run(until=10)

    def test_stop_kills_behaviours(self, sim, deployment):
        platform, container_a, _ = deployment
        ticks = []

        class Tick(TickerBehaviour):
            def on_tick(self):
                ticks.append(self.sim.now)
                return
                yield  # pragma: no cover

        agent = Agent("a")
        container_a.deploy(agent)
        agent.add_behaviour(Tick(period=1.0))
        sim.run(until=3.5)
        agent.stop()
        sim.run(until=10)
        assert len(ticks) == 3

    def test_behaviour_requires_deployment(self):
        agent = Agent("lonely")

        class Nothing(OneShotBehaviour):
            def action(self):
                return
                yield  # pragma: no cover

        with pytest.raises(RuntimeError):
            agent.add_behaviour(Nothing())
