"""Unit tests for the Table 1 cost model and the common data representation."""

import pytest

from repro.core.costs import (
    CostModel,
    DEFAULT_COST_MODEL,
    REQUEST_TYPE_GROUPS,
    TaskCost,
    TaskKind,
)
from repro.core.records import (
    CollectionGoal,
    ManagementRecord,
    RELEVANT_METRICS,
    Sample,
    metric_from_mib_name,
)
from repro.snmp.engine import VarBind
from repro.snmp.mib import std


class TestCostModel:
    def test_verbatim_table1_values(self):
        model = CostModel()
        assert model.request_cost("A") == TaskCost(cpu=10, net=5)
        for rtype in ("A", "B", "C"):
            assert model.parse_cost(rtype) == TaskCost(cpu=15)
            assert model.infer_cost(rtype) == TaskCost(cpu=20, net=5)
        assert model.cross_cost() == TaskCost(cpu=40, net=8)

    def test_estimated_cells_flagged(self):
        model = CostModel()
        assert model.request_cost("B").estimated
        assert model.request_cost("C").estimated
        assert model.store_cost().estimated
        assert not model.request_cost("A").estimated
        assert not model.cross_cost().estimated

    def test_message_sizes_sum_to_network_costs(self):
        model = CostModel()
        assert model.poll_request_size + model.poll_response_size == \
            pytest.approx(model.request_cost("A").net)
        assert model.fetch_query_size + model.fetch_reply_size == \
            pytest.approx(model.infer_cost("A").net)
        assert model.cross_query_size + model.cross_reply_size == \
            pytest.approx(model.cross_cost().net)

    def test_parsing_shrinks_records(self):
        model = CostModel()
        assert model.parsed_record_size < model.raw_record_size
        assert model.parsed_record_size == pytest.approx(
            model.raw_record_size * CostModel.PARSE_SHRINK)

    def test_scaling_estimates_only(self):
        model = CostModel().with_estimates_scaled(2.0)
        assert model.store_cost().cpu == 20
        assert model.request_cost("B").cpu == 20
        assert model.request_cost("A").cpu == 10  # verbatim untouched
        assert model.infer_cost("A").cpu == 20

    def test_with_override(self):
        model = CostModel().with_override(
            TaskKind.INFER, "A", TaskCost(cpu=100, net=1))
        assert model.infer_cost("A").cpu == 100
        assert model.infer_cost("B").cpu == 20

    def test_unknown_lookup_raises(self):
        model = CostModel()
        with pytest.raises(KeyError):
            model.cost(TaskKind.REQUEST, "Z")
        with pytest.raises(KeyError):
            model.for_group("astral")

    def test_table_rows_shape(self):
        rows = CostModel().table_rows()
        names = [name for name, _ in rows]
        assert names[0] == "Request A"
        assert names[-1] == "Inference AxBxC"
        assert len(rows) == 11  # matches Table 1 row count

    def test_group_mapping_bijective(self):
        assert set(REQUEST_TYPE_GROUPS) == {"A", "B", "C"}
        assert len(set(REQUEST_TYPE_GROUPS.values())) == 3

    def test_task_cost_validation(self):
        with pytest.raises(ValueError):
            TaskCost(cpu=-1)
        with pytest.raises(ValueError):
            TaskCost(cpu=1).scaled(-1)

    def test_table_is_immutable_after_construction(self):
        # The per-kind caches are resolved once in __init__; a poked
        # table entry would silently diverge from them, so the table
        # rejects writes.  Runtime variants go through derive()/scaled().
        model = CostModel()
        with pytest.raises(TypeError):
            model._table[(TaskKind.REQUEST, "A")] = TaskCost(cpu=1)
        with pytest.raises((TypeError, AttributeError)):
            model._table.pop((TaskKind.REQUEST, "A"))
        # Derived models still build fine from the frozen table ...
        override = model.with_override(
            TaskKind.REQUEST, "A", TaskCost(cpu=99, net=5))
        assert override.request_cost("A").cpu == 99
        # ... and the source model's caches are unaffected.
        assert model.request_cost("A").cpu == 10
        assert model.request_costs["A"].cpu == 10


class TestRecords:
    def test_metric_normalization(self):
        assert metric_from_mib_name("ssCpuBusy") == ("cpu_load", None)
        assert metric_from_mib_name("ifInOctets.3") == ("if_in_octets", 3)
        assert metric_from_mib_name("hrSWRunName.2") == ("proc_name", 2)
        assert metric_from_mib_name("unknownThing") == (None, None)

    def _raw_record(self):
        varbinds = [
            VarBind(std.CPU_LOAD, 95.0, "ssCpuBusy"),
            VarBind(std.MEM_AVAIL, 1000, "memAvailReal"),
            VarBind(std.PROC_TABLE.child(1), "procX", "hrSWRunName.1"),
            VarBind("9.9.9", None, "mystery"),
            VarBind(std.DISK_FREE, error="noSuchObject"),
        ]
        return ManagementRecord.from_varbinds(
            device="d1", site="s1", request_type="A", group="performance",
            varbinds=varbinds, collected_at=3.0, size_units=4.5,
        )

    def test_from_varbinds_skips_errors_and_unknowns(self):
        record = self._raw_record()
        metrics = record.metrics()
        assert "cpu_load" in metrics
        assert "mem_available" in metrics
        assert "proc_name" in metrics
        assert len(record) == 3  # mystery + errored dropped
        assert not record.parsed

    def test_parse_keeps_relevant_and_shrinks(self):
        record = self._raw_record()
        parsed = record.parse(1.5)
        assert parsed.parsed
        assert parsed.size_units == 1.5
        assert "proc_name" not in parsed.metrics()  # not analysis-relevant
        assert "cpu_load" in parsed.metrics()
        # original untouched
        assert not record.parsed
        assert len(record) == 3

    def test_to_facts_shape(self):
        record = self._raw_record().parse(1.5)
        facts = record.to_facts()
        assert all(fact.type == "sample" for fact in facts)
        cpu_fact = next(f for f in facts if f["metric"] == "cpu_load")
        assert cpu_fact["device"] == "d1"
        assert cpu_fact["value"] == 95.0
        assert cpu_fact["time"] == 3.0

    def test_sample_instance_in_fact(self):
        sample = Sample("d", "s", "traffic", "if_in_octets", 5, 1.0, instance=2)
        fact = sample.to_fact()
        assert fact["instance"] == 2

    def test_relevant_metrics_exclude_noise(self):
        assert "proc_name" not in RELEVANT_METRICS
        assert "cpu_load" in RELEVANT_METRICS


class TestCollectionGoal:
    def test_goal_oids_follow_group(self):
        goal = CollectionGoal("d1", "C", count=2, interval=0.5)
        assert goal.group == "traffic"
        oids = goal.oids(interface_count=3)
        assert std.IF_IN_OCTETS.child(3) in oids

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CollectionGoal("d1", "Z")
        with pytest.raises(ValueError):
            CollectionGoal("d1", "A", interval=0)

    def test_default_cost_model_is_shared_instance(self):
        assert DEFAULT_COST_MODEL.request_cost("A").cpu == 10
