"""The analyzer gossip mesh (repro.core.gossip).

Three layers of pinning:

* **algebra** (hypothesis): the digest merge is a join-semilattice --
  commutative, associative, idempotent -- and the suspicion order never
  regresses ``confirmed -> alive`` without a strictly fresher incarnation
  (the SWIM refutation rule).
* **PeerView**: escalation timing (alive -> suspect -> confirmed),
  refutation on self-suspicion, recovery accounting.
* **components on a live grid**: the stand-in dispatcher buffers results
  bound for a confirmed-dead root (duplicates counted, not shipped),
  flushes exactly once on heal, and the root's job dedup absorbs the
  overlap with the Reaper's re-dispatch.  And the byte-identity
  contract: ``gossip=`` unset builds *nothing* -- figure-6 outputs stay
  byte-identical across a double run.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gossip import (
    ALIVE,
    CONFIRMED,
    SUSPECT,
    GossipMesh,
    PeerView,
    entry_key,
    merge_digests,
    merge_entries,
)
from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.network.topology import LinkSpec

# -- strategies ------------------------------------------------------------

status_strategy = st.sampled_from([ALIVE, SUSPECT, CONFIRMED])
entry_strategy = st.tuples(
    status_strategy,
    st.integers(min_value=0, max_value=5),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
member_strategy = st.sampled_from(["root", "a1", "a2", "a3", "a4"])
digest_strategy = st.dictionaries(
    member_strategy, entry_strategy, max_size=5)


class TestMergeAlgebra:
    @given(entry_strategy, entry_strategy)
    def test_entry_merge_commutative(self, a, b):
        assert merge_entries(a, b) == merge_entries(b, a)

    @given(entry_strategy, entry_strategy, entry_strategy)
    def test_entry_merge_associative(self, a, b, c):
        assert merge_entries(merge_entries(a, b), c) == \
            merge_entries(a, merge_entries(b, c))

    @given(entry_strategy)
    def test_entry_merge_idempotent(self, a):
        assert merge_entries(a, a) == a

    @given(digest_strategy, digest_strategy)
    def test_digest_merge_commutative(self, a, b):
        assert merge_digests(a, b) == merge_digests(b, a)

    @settings(max_examples=50)
    @given(digest_strategy, digest_strategy, digest_strategy)
    def test_digest_merge_associative(self, a, b, c):
        assert merge_digests(merge_digests(a, b), c) == \
            merge_digests(a, merge_digests(b, c))

    @given(digest_strategy)
    def test_digest_merge_idempotent(self, a):
        assert merge_digests(a, a) == a

    @given(digest_strategy, digest_strategy)
    def test_merge_never_drops_members(self, a, b):
        merged = merge_digests(a, b)
        assert set(merged) == set(a) | set(b)

    @given(entry_strategy, entry_strategy)
    def test_merge_is_monotone(self, a, b):
        """The join never falls below either argument."""
        merged = merge_entries(a, b)
        assert entry_key(merged) >= entry_key(a)
        assert entry_key(merged) >= entry_key(b)

    @given(st.integers(min_value=0, max_value=5),
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_no_regression_without_fresh_incarnation(
            self, incarnation, heard_a, heard_b):
        """confirmed + alive at the SAME incarnation stays confirmed, no
        matter how recently the alive claim was heard; only a strictly
        higher incarnation (the subject's own refutation) revives it."""
        confirmed = (CONFIRMED, incarnation, heard_a)
        alive_same = (ALIVE, incarnation, heard_b)
        assert merge_entries(confirmed, alive_same) == confirmed
        refuted = (ALIVE, incarnation + 1, heard_b)
        assert merge_entries(confirmed, refuted) == refuted


# -- PeerView --------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _view(**kwargs):
    clock = FakeClock()
    view = PeerView("a1", ["root", "a1", "a2"],
                    kwargs.pop("suspect_after", 3.0),
                    kwargs.pop("confirm_after", 3.0), clock)
    return view, clock


class TestPeerView:
    def test_requires_positive_thresholds(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            PeerView("a1", ["a1"], 0.0, 3.0, clock)
        with pytest.raises(ValueError):
            PeerView("a1", ["a1"], 3.0, -1.0, clock)

    def test_self_must_be_member(self):
        with pytest.raises(ValueError):
            PeerView("ghost", ["a1", "a2"], 3.0, 3.0, FakeClock())

    def test_escalation_ladder(self):
        view, clock = _view()
        assert view.status("root") == ALIVE
        clock.now = 3.5  # silence > suspect_after
        suspects, confirms = view.tick()
        assert suspects == ["root", "a2"]
        assert confirms == []
        assert view.status("root") == SUSPECT
        clock.now = 6.0  # suspicion < confirm_after: still suspect
        assert view.tick() == ([], [])
        clock.now = 7.0  # > suspect time (3.5) + confirm_after (3.0)
        suspects, confirms = view.tick()
        assert confirms == ["root", "a2"]
        assert view.status("root") == CONFIRMED
        assert view.confirm_times["root"] == 7.0

    def test_note_heard_defers_suspicion(self):
        view, clock = _view()
        clock.now = 2.5
        view.note_heard("root")
        clock.now = 4.0  # only 1.5s since root was heard
        suspects, _ = view.tick()
        assert suspects == ["a2"]
        assert view.status("root") == ALIVE

    def test_note_heard_does_not_revive_confirmed(self):
        """Transport-level evidence refreshes recency only; the
        confirmed -> alive edge belongs exclusively to refutation."""
        view, clock = _view()
        clock.now = 10.0
        view.tick()
        clock.now = 20.0
        view.tick()
        assert view.status("root") == CONFIRMED
        view.note_heard("root")
        assert view.status("root") == CONFIRMED

    def test_merge_refutes_self_suspicion(self):
        view, clock = _view()
        assert view.incarnation == 0
        view.merge({"a1": [SUSPECT, 0, 1.0]})
        assert view.incarnation == 1
        assert view.refutations == 1
        assert view.status("a1") == ALIVE
        # An echo of the old suspicion at the old incarnation is stale.
        view.merge({"a1": [CONFIRMED, 0, 2.0]})
        assert view.incarnation == 1
        assert view.refutations == 1
        # But confirmation at the *current* incarnation forces a bump.
        view.merge({"a1": [CONFIRMED, 1, 3.0]})
        assert view.incarnation == 2
        assert view.refutations == 2

    def test_merge_records_recovery(self):
        view, clock = _view()
        clock.now = 10.0
        view.tick()
        clock.now = 20.0
        view.tick()
        assert view.status("root") == CONFIRMED
        clock.now = 25.0
        transitions = view.merge({"root": [ALIVE, 1, 24.0]})
        assert ("root", CONFIRMED, ALIVE) in transitions
        assert view.recoveries == 1
        assert view.recover_times["root"] == 25.0
        assert "root" in view.alive_members()

    def test_merge_rejects_unknown_status(self):
        view, _ = _view()
        with pytest.raises(ValueError):
            view.merge({"root": ["zombie", 0, 1.0]})

    def test_digest_refreshes_own_entry(self):
        view, clock = _view()
        clock.now = 42.0
        digest = view.digest()
        assert digest["a1"] == [ALIVE, 0, 42.0]
        assert set(digest) == {"root", "a1", "a2"}


# -- components on a live grid --------------------------------------------


def _gossip_system(gossip={"interval": 1.0}, analysis_hosts=4):
    spec = GridTopologySpec(
        devices=[
            DeviceSpec("dev1", "server", "field"),
            DeviceSpec("dev2", "router", "field"),
            DeviceSpec("dev3", "server", "field"),
        ],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf%d" % (i + 1), "mgmt")
                        for i in range(analysis_hosts)],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=11,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=40.0,
        reliability={
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
            "redelivery_give_up_after": None,
        },
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        heartbeat_interval=2.0,
        gossip=gossip,
    )
    return GridManagementSystem(spec)


class TestMeshConstruction:
    def test_mesh_wires_every_analyzer_and_the_root(self):
        system = _gossip_system()
        mesh = system.gossip
        assert isinstance(mesh, GossipMesh)
        assert set(mesh.members) == {
            a.name for a in system.analyzers}
        for analyzer in system.analyzers:
            assert analyzer.gossip is mesh.members[analyzer.name]
        assert mesh.root_gossip.agent is system.root
        # Defaults: suspect/confirm at 3x the interval.
        assert mesh.suspect_after == 3.0
        assert mesh.confirm_after == 3.0

    def test_mesh_parameter_validation(self):
        system = _gossip_system(gossip=False)
        with pytest.raises(ValueError):
            GossipMesh(system.root, system.analyzers, interval=0.0)
        with pytest.raises(ValueError):
            GossipMesh(system.root, [])

    def test_gossip_unset_builds_nothing(self):
        system = _gossip_system(gossip=False)
        assert system.gossip is None
        for analyzer in system.analyzers:
            assert analyzer.gossip is None
            assert all(b.name not in ("gossip", "gossip-inbox",
                                      "gossip-standin")
                       for b in analyzer.behaviours())

    def test_quiet_mesh_converges_alive(self):
        system = _gossip_system()
        system.sim.run(until=30.0)
        for component in system.gossip.members.values():
            assert component.view.alive_members() == [
                "analyzer-1", "analyzer-2", "analyzer-3", "analyzer-4",
                "pg-root",
            ]
        assert system.gossip.detection_times() == {}
        stats = system.gossip.stats()
        assert stats["digests_sent"] > 0
        assert stats["confirms"] == 0


class TestStandInDispatcher:
    def _result(self, job_id):
        return {"job_id": job_id, "findings": [], "records_analyzed": 3}

    @staticmethod
    def _merge(component, digest):
        """Deliver a digest the way the inbox would: merge + root check."""
        component._after_merge(component.view.merge(digest))

    def _confirm_root(self, component):
        self._merge(component, {"pg-root": [CONFIRMED, 0, 0.0]})

    def test_intercept_only_when_root_confirmed_and_targeted(self):
        system = _gossip_system()
        component = system.gossip.members["analyzer-2"]
        # Root alive: ship normally.
        assert not component.intercept_result(self._result("j1"), "pg-root")
        self._confirm_root(component)
        # Root confirmed, but the result belongs to a site gateway:
        # never intercepted.
        assert not component.intercept_result(self._result("j1"), "gw-1")
        assert component.intercept_result(self._result("j1"), "pg-root")

    def test_stand_in_buffers_and_counts_duplicates(self):
        system = _gossip_system()
        component = system.gossip.members["analyzer-1"]
        self._confirm_root(component)
        assert component.stand_in() == "analyzer-1"  # smallest alive
        assert component.intercept_result(self._result("j1"), "pg-root")
        assert component.intercept_result(self._result("j2"), "pg-root")
        assert component.intercept_result(self._result("j1"), "pg-root")
        assert component.results_buffered == 2
        assert component.duplicates_absorbed == 1
        assert sorted(component.buffered_results) == ["j1", "j2"]

    def test_non_stand_in_redirects_to_stand_in(self):
        system = _gossip_system()
        sender = system.gossip.members["analyzer-3"]
        self._confirm_root(sender)
        assert sender.stand_in() == "analyzer-1"
        assert sender.intercept_result(self._result("j9"), "pg-root")
        assert sender.results_redirected == 1
        system.sim.run(until=1.0)  # let the redirect arrive
        stand_in = system.gossip.members["analyzer-1"]
        assert stand_in.buffered_results["j9"]["job_id"] == "j9"
        assert stand_in.results_buffered == 1

    def test_flush_on_recovery_and_root_dedup(self):
        system = _gossip_system()
        component = system.gossip.members["analyzer-1"]
        self._confirm_root(component)
        for job_id in ("j1", "j2"):
            assert component.intercept_result(
                self._result(job_id), "pg-root")
        before = system.root.duplicate_results
        # The root's refutation (fresh incarnation) triggers the flush.
        self._merge(component, {"pg-root": [ALIVE, 1, 0.5]})
        assert component.buffered_results == {}
        assert component.results_flushed == 2
        system.sim.run(until=5.0)
        # Neither job id exists at the root: both flushed results are
        # absorbed by the dedup and *counted*, never re-applied.
        assert system.root.duplicate_results == before + 2

    def test_election_recorded_per_view(self):
        system = _gossip_system()
        component = system.gossip.members["analyzer-4"]
        self._confirm_root(component)
        assert component.elections
        assert component.elections[-1][1] == "analyzer-1"
        assert system.gossip.stand_ins()["analyzer-4"] == "analyzer-1"


class TestGossipOffByteIdentity:
    def test_figure6_double_run_bytes_identical(self):
        """gossip unset is the exact paper path: two fresh runs of the
        figure-6 driver produce byte-identical reports and exports."""
        from repro.baselines.driver import run_figure6
        from repro.evaluation import export

        def render():
            results = run_figure6(polls_per_type=3, seed=42)
            reports = "\n".join(
                results[label].report.render()
                for label in ("centralized", "multiagent", "grid"))
            payload = json.dumps(
                {label: export.run_result_to_dict(result)
                 for label, result in results.items()},
                sort_keys=True)
            return reports + "\n" + payload

        assert render() == render()
