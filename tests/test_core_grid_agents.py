"""Tests for the collector, classifier and interface grid agents."""

import pytest

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.agents.platform import AgentPlatform
from repro.core.classifier import (
    CLUSTER_STRATEGIES,
    ClassifierAgent,
    cluster_by_device,
    cluster_by_group,
    cluster_by_site,
)
from repro.core.collector import CollectorAgent
from repro.core.costs import CostModel, TaskKind
from repro.core.interface import Channel, EmailChannel, HtmlChannel, InterfaceAgent
from repro.core.records import CollectionGoal
from repro.core.reports import Finding, ManagementReport
from repro.core.storage import ManagementDataStore
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.simkernel.simulator import Simulator
from repro.snmp.device import ManagedDevice
from repro.snmp.engine import SnmpEngine


class Sink(Agent):
    """Receives and remembers all messages."""

    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def setup(self):
        agent = self

        class Collect(CyclicBehaviour):
            def step(self):
                message = yield from self.receive()
                if message is not None:
                    agent.got.append(message)

        self.add_behaviour(Collect())


@pytest.fixture
def world():
    sim = Simulator(seed=11)
    network = Network(sim)
    transport = Transport(network)
    platform = AgentPlatform(sim, network, transport)
    device_host = network.add_host("dev1", "site1", role="device")
    device = ManagedDevice(sim, device_host, profile="server", tick=0.5)
    SnmpEngine(device, transport)
    collector_host = network.add_host("col1", "site1", role="collector")
    sink_host = network.add_host("sinkhost", "site1", role="storage")
    collector_container = platform.create_container("cc", collector_host)
    sink_container = platform.create_container("sc", sink_host)
    return (sim, network, platform, device, collector_container,
            sink_container)


class TestCollector:
    def _run_collector(self, world, parse_locally=True, goals=None,
                       batch_size=1):
        sim, network, platform, device, collector_container, sink_container \
            = world
        sink = Sink("classifier")
        sink_container.deploy(sink)
        if goals is None:
            goals = [CollectionGoal("dev1", "A", count=2, interval=1.0)]
        collector = CollectorAgent(
            "col", goals=goals, classifier_name="classifier",
            parse_locally=parse_locally, batch_size=batch_size,
        )
        collector_container.deploy(collector)
        sim.run(until=100)
        return collector, sink

    def test_polls_produce_records(self, world):
        collector, sink = self._run_collector(world)
        assert collector.polls_completed == 2
        assert collector.records_shipped == 2
        records = [r for m in sink.got for r in m.content["records"]]
        assert len(records) == 2
        assert all(record.parsed for record in records)
        assert all(record.device == "dev1" for record in records)

    def test_request_and_parse_costs_charged(self, world):
        collector, _ = self._run_collector(world)
        cpu = collector.host.cpu
        model = collector.cost_model
        assert cpu.units_by_label[TaskKind.REQUEST] == \
            2 * model.request_cost("A").cpu
        assert cpu.units_by_label[TaskKind.PARSE] == \
            2 * model.parse_cost("A").cpu

    def test_raw_mode_skips_parse(self, world):
        collector, sink = self._run_collector(world, parse_locally=False)
        assert TaskKind.PARSE not in collector.host.cpu.units_by_label
        records = [r for m in sink.got for r in m.content["records"]]
        assert all(not record.parsed for record in records)
        assert records[0].size_units == collector.cost_model.raw_record_size

    def test_batching_reduces_envelopes(self, world):
        goals = [CollectionGoal("dev1", "A", count=4, interval=0.5)]
        collector, sink = self._run_collector(
            world, goals=goals, batch_size=4)
        assert collector.records_shipped == 4
        assert len(sink.got) == 1  # one envelope

    def test_poll_network_cost_matches_table1(self, world):
        collector, _ = self._run_collector(world)
        net = collector.host.nic.units_by_label["snmp"]
        assert net == pytest.approx(
            2 * collector.cost_model.request_cost("A").net)

    def test_dead_device_counts_failures(self, world):
        sim, network, platform, device, collector_container, sink_container \
            = world
        network.host("dev1").fail()
        sink = Sink("classifier")
        sink_container.deploy(sink)
        collector = CollectorAgent(
            "col", goals=[CollectionGoal("dev1", "A", count=1)],
            classifier_name="classifier",
        )
        collector_container.deploy(collector)
        sim.run(until=100)
        assert collector.polls_failed == 1
        assert collector.records_shipped == 0

    def test_idle_event_fires_when_goals_finish(self, world):
        collector, _ = self._run_collector(world)
        assert collector.idle_event.triggered

    def test_runtime_goal_addition(self, world):
        collector, sink = self._run_collector(world)
        before = collector.polls_completed
        collector.add_goal(CollectionGoal("dev1", "B", count=1))
        collector.sim.run(until=200)
        assert collector.polls_completed == before + 1

    def test_multiple_goal_types_map_to_groups(self, world):
        goals = [
            CollectionGoal("dev1", "A", count=1),
            CollectionGoal("dev1", "B", count=1),
            CollectionGoal("dev1", "C", count=1),
        ]
        collector, sink = self._run_collector(world, goals=goals)
        records = [r for m in sink.got for r in m.content["records"]]
        groups = sorted(record.group for record in records)
        assert groups == ["performance", "storage", "traffic"]


class TestClassifier:
    def _world_with_classifier(self, world, **kwargs):
        sim, network, platform, device, collector_container, sink_container \
            = world
        store = ManagementDataStore(sink_container.host)
        root_sink = Sink("pg-root")
        collector_container.deploy(root_sink)  # root lives elsewhere
        classifier = ClassifierAgent(
            "classifier", store=store, processor_name="pg-root", **kwargs)
        sink_container.deploy(classifier)
        collector = CollectorAgent(
            "col",
            goals=[
                CollectionGoal("dev1", "A", count=2, interval=0.5),
                CollectionGoal("dev1", "B", count=1),
            ],
            classifier_name="classifier",
        )
        collector_container.deploy(collector)
        return sim, classifier, store, root_sink

    def test_classifies_stores_and_notifies(self, world):
        sim, classifier, store, root_sink = self._world_with_classifier(
            world, dataset_threshold=3)
        sim.run(until=100)
        assert classifier.records_classified == 3
        assert store.records_stored == 3
        assert classifier.datasets_published == 1
        notify = root_sink.got[0]
        assert notify.content["record_count"] == 3
        assert sorted(notify.content["clusters"]) == \
            ["performance", "storage"]
        assert notify.content["cluster_sizes"]["performance"] == 2

    def test_flush_timeout_publishes_partial_dataset(self, world):
        sim, classifier, store, root_sink = self._world_with_classifier(
            world, dataset_threshold=100, flush_timeout=2.0)
        sim.run(until=100)
        assert classifier.datasets_published >= 1
        assert sum(m.content["record_count"] for m in root_sink.got) == 3

    def test_parses_raw_records(self, world):
        sim, network, platform, device, collector_container, sink_container \
            = world
        store = ManagementDataStore(sink_container.host)
        root_sink = Sink("pg-root")
        collector_container.deploy(root_sink)
        classifier = ClassifierAgent(
            "classifier", store=store, processor_name="pg-root",
            dataset_threshold=1)
        sink_container.deploy(classifier)
        collector = CollectorAgent(
            "col", goals=[CollectionGoal("dev1", "A", count=1)],
            classifier_name="classifier", parse_locally=False,
        )
        collector_container.deploy(collector)
        sim.run(until=100)
        assert classifier.host.cpu.units_by_label[TaskKind.PARSE] == \
            classifier.cost_model.parse_cost("A").cpu

    def test_cluster_strategies(self):
        class R:
            group = "performance"
            device = "d9"
            site = "s7"

        assert cluster_by_group(R()) == "performance"
        assert cluster_by_device(R()) == "device:d9"
        assert cluster_by_site(R()) == "site:s7"
        assert set(CLUSTER_STRATEGIES) == {"by-group", "by-device", "by-site"}

    def test_unknown_strategy_rejected(self, world):
        sim, network, platform, device, collector_container, sink_container \
            = world
        store = ManagementDataStore(sink_container.host)
        with pytest.raises(ValueError):
            ClassifierAgent("x", store=store, processor_name="p",
                            cluster_strategy="by-vibes")

    def test_colocation_enforced(self, world):
        sim, network, platform, device, collector_container, sink_container \
            = world
        store = ManagementDataStore(sink_container.host)
        classifier = ClassifierAgent("x", store=store, processor_name="p")
        with pytest.raises(RuntimeError):
            collector_container.deploy(classifier)  # wrong host


class TestInterface:
    def _deploy_interface(self, world, **kwargs):
        sim, network, platform, device, collector_container, sink_container \
            = world
        interface = InterfaceAgent("iface", **kwargs)
        sink_container.deploy(interface)
        return sim, platform, interface, collector_container

    def _report(self, severity="critical"):
        return ManagementReport(
            "ds-1", [Finding("high-cpu", severity, "d1", "s1")], 5, 1.0)

    def _send_report(self, platform, interface, report):
        sender = Sink("root-sender")
        platform.containers["cc"].deploy(sender)
        sender.send(ACLMessage(
            Performative.INFORM, "root-sender", "iface",
            content={"report": report}, ontology="management-report",
            size_units=2.0,
        ))

    def test_report_rendered_on_all_channels(self, world):
        sim, platform, interface, _ = self._deploy_interface(
            world, channels=[Channel("console"), HtmlChannel(),
                             EmailChannel()])
        self._send_report(platform, interface, self._report())
        sim.run(until=50)
        assert len(interface.reports) == 1
        for channel in interface.channels:
            assert len(channel.delivered_reports) == 1
        html = interface.channels[1].delivered_reports[0][1]
        assert html.startswith("<html>")

    def test_critical_findings_raise_alerts(self, world):
        sim, platform, interface, _ = self._deploy_interface(world)
        self._send_report(platform, interface, self._report("critical"))
        sim.run(until=50)
        assert len(interface.alerts) == 1

    def test_low_severity_no_alert(self, world):
        sim, platform, interface, _ = self._deploy_interface(world)
        self._send_report(platform, interface, self._report("warning"))
        sim.run(until=50)
        assert interface.alerts == []
        assert len(interface.reports) == 1

    def test_reports_event_triggers_at_count(self, world):
        sim, platform, interface, _ = self._deploy_interface(world)
        event = interface.reports_event(1)
        assert not event.triggered
        self._send_report(platform, interface, self._report())
        sim.run(until=50)
        assert event.triggered
        # already-satisfied count triggers immediately
        assert interface.reports_event(1).triggered

    def test_render_charges_cpu(self, world):
        sim, platform, interface, _ = self._deploy_interface(world)
        self._send_report(platform, interface, self._report())
        sim.run(until=50)
        assert interface.host.cpu.units_by_label["render"] > 0

    def test_feedback_goal_submission(self, world):
        sim, platform, interface, collector_container = \
            self._deploy_interface(world)
        collector = CollectorAgent(
            "col", goals=[], classifier_name="nowhere")
        collector_container.deploy(collector)
        interface.submit_goal(
            CollectionGoal("dev1", "A", count=1), "col")
        sim.run(until=100)
        assert collector.polls_completed == 1
        assert interface.feedback_log[0][0] == "goal"
        with pytest.raises(KeyError):
            interface.submit_goal(CollectionGoal("dev1", "A"), "ghost")
