"""Health layer: SLO burn-rate machine, alert-path findings, scorecards.

Three layers of coverage:

* pure units -- :class:`SLOSpec` validation, the sliding-window counter
  and the multi-window trip/clear state machine, no simulator at all;
* one wired deployment -- declaring ``slos=`` on the spec builds the
  monitor, feeds the per-stage histograms in line from span closes, and
  a storage-host outage trips a ``slo-burn`` finding that arrives at the
  interface grid as an :class:`~repro.core.reports.Alert` and clears
  after the heal (the ``slo-burn-clear`` info finding follows);
* the federation leg -- gateways advertise their site scorecard on
  beacons and peers collect it.
"""

import pytest

from repro.core.health import (
    BAD_STATUSES, DEGRADED, GREEN, RED, SLOSpec, SLOTracker,
    aggregate_scorecards, worst_state)
from repro.core.system import (
    DeviceSpec, GridManagementSystem, GridTopologySpec, HostSpec)
from repro.network.topology import LinkSpec
from repro.workloads.faults import FaultEvent, FaultPlan, apply_fault_plan


class TestSLOSpec:
    def test_defaults_and_budget(self):
        slo = SLOSpec("dispatch", p=99.0, target=5.0)
        assert slo.window == 3600.0
        assert slo.fast_window == 300.0  # the SRE 5min-vs-1h pairing
        assert slo.budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOSpec("", p=99, target=1.0)
        with pytest.raises(ValueError):
            SLOSpec("ship", p=100.0, target=1.0)
        with pytest.raises(ValueError):
            SLOSpec("ship", p=99, target=0.0)
        with pytest.raises(ValueError):
            SLOSpec("ship", p=99, target=1.0, window=60.0, fast_window=120.0)
        with pytest.raises(ValueError):
            SLOSpec("ship", p=99, target=1.0, burn_threshold=1.0,
                    clear_threshold=2.0)


class TestSLOTracker:
    def _tracker(self):
        return SLOTracker(SLOSpec(
            "ship", p=90.0, target=1.0, window=120.0, fast_window=30.0))

    def test_trips_only_when_both_windows_burn(self):
        tracker = self._tracker()
        # Good traffic fills the slow window first.
        for index in range(20):
            tracker.record(float(index), 0.5)
        assert tracker.evaluate(20.0) is None
        # A burst of bad events: fast window saturates, and with budget
        # 0.1 the slow window's burn also exceeds 2x.
        for index in range(20):
            tracker.record(20.0 + index * 0.5, 5.0)
        assert tracker.evaluate(30.0) == "raise"
        assert tracker.burning
        assert tracker.evaluate(31.0) is None  # no re-raise while burning

    def test_bad_statuses_burn_regardless_of_duration(self):
        tracker = self._tracker()
        for status in sorted(BAD_STATUSES):
            assert tracker.record(0.0, 0.001, status) is True
        assert tracker.record(0.0, 0.001, "ok") is False
        # Open spans terminated by the detector have a duration; a None
        # duration (defensive) must not crash the comparison.
        assert tracker.record(0.0, None, "evicted") is True
        assert tracker.record(0.0, None, "ok") is False

    def test_clears_with_hysteresis_once_fast_window_drains(self):
        tracker = self._tracker()
        for index in range(10):
            tracker.record(float(index), 5.0)
        assert tracker.evaluate(10.0) == "raise"
        # 31 seconds later the bad burst has left the 30s fast window
        # (slow window still remembers it -- that must not block clear).
        tracker.record(41.0, 0.5)
        assert tracker.evaluate(41.5) == "clear"
        assert not tracker.burning
        assert tracker.raised == 1 and tracker.cleared == 1
        assert [event for _, event, _, _ in tracker.events] == \
            ["raise", "clear"]

    def test_empty_windows_report_zero_burn(self):
        tracker = self._tracker()
        assert tracker.burn_rates(1000.0) == (0.0, 0.0)


class TestScorecardHelpers:
    def test_worst_state_ordering(self):
        assert worst_state([]) == GREEN
        assert worst_state([GREEN, DEGRADED]) == DEGRADED
        assert worst_state([DEGRADED, RED, GREEN]) == RED

    def test_aggregate_by_site(self):
        cards = {
            "a": {"state": GREEN, "site": "s1"},
            "b": {"state": RED, "site": "s1"},
            "c": {"state": DEGRADED, "site": "s2"},
        }
        report = aggregate_scorecards(cards)
        assert report["sites"] == {"s1": RED, "s2": DEGRADED}
        assert report["overall"] == RED


OUTAGE_AT = 2.0
OUTAGE_LEN = 30.0
HORIZON = 400.0


def _build_system(slos, heal=True):
    spec = GridTopologySpec(
        devices=[
            DeviceSpec("dev1", "server", "field"),
            DeviceSpec("dev2", "router", "field"),
            DeviceSpec("dev3", "server", "field"),
        ],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf1", "mgmt"), HostSpec("inf2", "mgmt")],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=11,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=40.0,
        heartbeat_interval=2.0,
        reliability={
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
        },
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        slos=slos,
    )
    system = GridManagementSystem(spec)
    system.collectors[0].poll_retries = 8
    apply_fault_plan(system, FaultPlan([
        FaultEvent(OUTAGE_AT, FaultEvent.HOST_DOWN, "stor",
                   clear_after=OUTAGE_LEN if heal else None),
    ]))
    system.assign_goals(system.make_paper_goals(polls_per_type=4))
    return system


class TestHealthMonitorIntegration:
    def test_slos_imply_telemetry_and_build_the_monitor(self):
        spec = GridTopologySpec.paper_figure6c(
            slos=[SLOSpec("ship", p=90, target=40.0)])
        assert spec.telemetry is True
        system = GridManagementSystem(spec)
        assert system.health is not None
        assert system.telemetry is not None
        assert system.health.observe in \
            system.telemetry.recorder.close_hooks

    def test_no_slos_no_monitor_no_hooks(self):
        spec = GridTopologySpec.paper_figure6c(telemetry=True)
        system = GridManagementSystem(spec)
        assert system.health is None
        assert system.telemetry.recorder.close_hooks == []

    def test_outage_trips_burn_then_heal_clears_it(self):
        slo = SLOSpec("ship", p=90.0, target=10.0, window=120.0,
                      fast_window=30.0)
        system = _build_system([slo])
        system.sim.run(until=HORIZON)
        tracker = system.health.trackers[0]
        assert tracker.raised >= 1
        assert tracker.cleared == tracker.raised
        assert not tracker.burning
        events = [event for _, event, _, _ in tracker.events]
        assert events[0] == "raise"
        assert events[-1] == "clear"
        # The raise happened while the outage was in effect (or while
        # its parked backlog was still redelivering).
        first_raise = tracker.events[0][0]
        assert first_raise >= OUTAGE_AT

    def test_burn_findings_ride_the_alert_path(self):
        slo = SLOSpec("ship", p=90.0, target=10.0, window=120.0,
                      fast_window=30.0)
        system = _build_system([slo])
        system.sim.run(until=HORIZON)
        interface = system.interface
        kinds = {finding.kind for report in interface.reports
                 for finding in report.findings}
        assert "slo-burn" in kinds
        assert "slo-burn-clear" in kinds
        # Major severity => the existing alert machinery fired.
        alert_kinds = {alert.finding.kind for alert in interface.alerts}
        assert "slo-burn" in alert_kinds
        # Info severity => the clear informs without paging.
        assert "slo-burn-clear" not in alert_kinds
        burn = next(alert.finding for alert in interface.alerts
                    if alert.finding.kind == "slo-burn")
        assert burn.detail["stage"] == "ship"
        assert burn.detail["fast_burn"] >= slo.burn_threshold

    def test_stage_histograms_match_recorder_stage_latency(self):
        slo = SLOSpec("ship", p=90.0, target=10.0, window=120.0,
                      fast_window=30.0)
        system = _build_system([slo])
        system.sim.run(until=HORIZON)
        live = system.health.stage_latency()
        audited = system.telemetry.pipeline_report()["stage_latency"]
        assert set(live) == set(audited)
        for stage, stats in live.items():
            assert stats["count"] == audited[stage]["count"]
            assert stats["p99"] == audited[stage]["p99"]

    def test_scorecards_flag_dead_container_red(self):
        slo = SLOSpec("ship", p=90.0, target=10.0, window=120.0,
                      fast_window=30.0)
        system = _build_system([slo], heal=False)
        system.sim.run(until=60.0)
        system.analysis_containers[0].shutdown()
        cards = system.health.scorecards()
        card = cards["containers"][system.analysis_containers[0].name]
        assert card["state"] == RED
        assert any("container down" in reason for reason in card["reasons"])
        assert cards["overall"] == RED

    def test_snapshot_is_json_ready(self):
        import json

        slo = SLOSpec("ship", p=90.0, target=10.0, window=120.0,
                      fast_window=30.0)
        system = _build_system([slo])
        system.sim.run(until=100.0)
        payload = system.health.snapshot()
        json.dumps(payload)  # must not raise
        assert payload["stage_latency"]
        assert payload["slos"][0]["slo"]["stage"] == "ship"
        assert payload["scorecards"]["containers"]
        assert "reliable_channel" in payload


class TestFederationHealthAds:
    def test_gateways_advertise_and_collect_site_states(self):
        from repro.core.federation import (
            MESH, FederatedManagementSystem, FederatedTopologySpec,
            SiteSpec)

        spec = FederatedTopologySpec(
            sites=[SiteSpec.simple("site%d" % (index + 1), device_count=2,
                                   analyzer_count=1)
                   for index in range(3)],
            mode=MESH, seed=11, dataset_threshold=6,
            heartbeat_interval=1.0)
        system = FederatedManagementSystem(spec)
        system.enable_health_ads()
        system.assign_site_goals(system.make_site_goals(polls_per_type=2))
        system.sim.run(until=40.0)
        report = system.mesh_health_report()
        assert set(report) == {"site1", "site2", "site3"}
        for site, entry in report.items():
            assert entry["self"] in (GREEN, DEGRADED, RED)
            # Every peer heard this site's advertisement on the beacons.
            assert set(entry["peers"]) == set(report) - {site}

    def test_partitioned_peer_degrades_observers(self):
        from repro.core.federation import (
            MESH, FederatedManagementSystem, FederatedTopologySpec,
            SiteSpec)
        from repro.workloads.faults import site_partition_plan

        spec = FederatedTopologySpec(
            sites=[SiteSpec.simple("site%d" % (index + 1), device_count=2,
                                   analyzer_count=1)
                   for index in range(3)],
            mode=MESH, seed=11, dataset_threshold=6,
            heartbeat_interval=1.0)
        system = FederatedManagementSystem(spec)
        system.enable_health_ads()
        apply_fault_plan(system, site_partition_plan(
            "site3", partition_at=10.0, heal_after=None))
        system.assign_site_goals(system.make_site_goals(polls_per_type=2))
        system.sim.run(until=30.0)
        # Observers hold a severed link to site3: degraded, not green.
        assert system.site_scorecard("site1") == DEGRADED
        assert system.site_scorecard("site2") == DEGRADED
        # And the frozen last-heard advertisement for site3 is stale but
        # present (the mesh's memory of the severed site).
        report = system.mesh_health_report()
        assert "site1" in report["site3"]["peers"]
