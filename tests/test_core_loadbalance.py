"""Unit tests for placement policies and reports/findings."""

import pytest

from repro.agents.container import ResourceProfile
from repro.core.loadbalance import (
    CapacityWeightedPolicy,
    IdleFirstPolicy,
    KnowledgeFirstPolicy,
    NegotiatedPolicy,
    PlacementJob,
    RoundRobinPolicy,
    make_policy,
    policy_names,
)
from repro.core.reports import (
    Alert,
    Finding,
    ManagementReport,
    severity_rank,
)
from repro.rules.facts import Fact


def profile(name, cpu=10.0, services=("analysis",), knowledge=(),
            queue=0, busy=0):
    return ResourceProfile(
        container_name=name, host_name=name + "-host", cpu_capacity=cpu,
        disk_capacity=10.0, services=services, knowledge=knowledge,
        cpu_queue_length=queue, busy_agents=busy,
    )


def job(cluster="performance", records=10, cpu_units=200.0):
    return PlacementJob("j1", cluster, records, cpu_units)


class TestPolicies:
    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy()
        profiles = [profile("a"), profile("b")]
        picks = [policy.choose(job(), profiles).container_name
                 for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_service_filter_applies_to_all(self):
        profiles = [profile("a", services=("storage",))]
        for name in policy_names():
            policy = make_policy(name)
            assert policy.choose(job(), profiles) in (None, [])

    def test_idle_first_prefers_idle(self):
        policy = IdleFirstPolicy()
        profiles = [profile("busy", queue=3), profile("calm", queue=0)]
        assert policy.choose(job(), profiles).container_name == "calm"

    def test_idle_first_falls_back_to_shortest_queue(self):
        policy = IdleFirstPolicy()
        profiles = [profile("worse", queue=5, busy=1),
                    profile("better", queue=2, busy=1)]
        assert policy.choose(job(), profiles).container_name == "better"

    def test_capacity_prefers_fast_host(self):
        policy = CapacityWeightedPolicy()
        profiles = [profile("slow", cpu=5.0), profile("fast", cpu=50.0)]
        assert policy.choose(job(), profiles).container_name == "fast"

    def test_capacity_penalizes_backlog(self):
        policy = CapacityWeightedPolicy()
        profiles = [profile("loaded", cpu=10.0, queue=20),
                    profile("empty", cpu=10.0, queue=0)]
        assert policy.choose(job(), profiles).container_name == "empty"

    def test_knowledge_filters_then_weighs(self):
        policy = KnowledgeFirstPolicy()
        profiles = [
            profile("wrong", cpu=100.0, knowledge=("storage",)),
            profile("right", cpu=5.0, knowledge=("performance",)),
        ]
        assert policy.choose(job("performance"), profiles).container_name \
            == "right"

    def test_knowledge_falls_back_to_generalists(self):
        policy = KnowledgeFirstPolicy()
        profiles = [profile("generalist", knowledge=())]
        assert policy.choose(job("traffic"), profiles).container_name \
            == "generalist"

    def test_negotiated_returns_candidate_pool(self):
        policy = NegotiatedPolicy()
        assert policy.needs_negotiation
        # generalists (empty knowledge) stay in the pool; specialists of
        # other areas are filtered out
        profiles = [
            profile("a", knowledge=("performance",)),
            profile("b"),
            profile("c", knowledge=("storage",)),
        ]
        pool = policy.choose(job("performance"), profiles)
        assert [p.container_name for p in pool] == ["a", "b"]

    def test_empty_candidates_handled(self):
        for name in policy_names():
            policy = make_policy(name)
            assert policy.choose(job(), []) in (None, [])

    def test_make_policy_unknown(self):
        with pytest.raises(KeyError):
            make_policy("clairvoyant")

    def test_deterministic_tiebreak_by_name(self):
        policy = CapacityWeightedPolicy()
        profiles = [profile("bbb"), profile("aaa")]
        assert policy.choose(job(), profiles).container_name == "aaa"


class TestFindingsAndReports:
    def test_severity_ranking(self):
        assert severity_rank("critical") > severity_rank("major")
        assert severity_rank("major") > severity_rank("warning")
        assert severity_rank("unknown") == -1

    def test_finding_from_problem_fact(self):
        fact = Fact("problem", kind="high-cpu", severity="major",
                    device="d1", site="s1", value=95, metric="cpu_load")
        finding = Finding.from_fact(fact, level=2)
        assert finding.kind == "high-cpu"
        assert finding.device == "d1"
        assert finding.detail["value"] == 95
        assert finding.is_critical

    def test_finding_from_incident_fact(self):
        fact = Fact("incident", kind="site-overload", severity="critical",
                    site="s1", devices=("d1", "d2"))
        finding = Finding.from_fact(fact, level=3)
        assert finding.device == "d1,d2"
        assert finding.level == 3

    def test_report_dedup_keeps_worst_severity(self):
        low = Finding("high-cpu", "warning", "d1", "s1")
        high = Finding("high-cpu", "critical", "d1", "s1")
        other = Finding("low-disk", "minor", "d2", "s1")
        report = ManagementReport("ds", [low, high, other], 10, 5.0)
        deduped = report.deduplicated()
        assert len(deduped) == 2
        kept = {f.kind: f.severity for f in deduped}
        assert kept["high-cpu"] == "critical"

    def test_report_by_severity_and_critical(self):
        findings = [
            Finding("a", "critical", "d1"),
            Finding("b", "warning", "d2"),
        ]
        report = ManagementReport("ds", findings, 5, 1.0)
        assert len(report.by_severity()["critical"]) == 1
        assert len(report.critical_findings()) == 1
        assert len(report) == 2

    def test_report_size_grows_with_findings(self):
        small = ManagementReport("ds", [], 1, 0.0)
        big = ManagementReport(
            "ds", [Finding("k", "minor", "d")] * 10, 1, 0.0)
        assert big.size_units > small.size_units

    def test_alert_wraps_finding(self):
        finding = Finding("high-cpu", "critical", "d1")
        alert = Alert(finding, raised_at=9.0, channel="email")
        assert alert.finding is finding
        assert alert.channel == "email"
