"""Direct unit tests for the contract-net initiator/responder pair."""

import pytest

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.agents.platform import AgentPlatform
from repro.core.loadbalance import PlacementJob
from repro.core.negotiation import (
    CONTRACT_NET,
    ContractNetInitiator,
    ContractNetResponder,
)


class Bidder(Agent):
    """An analyzer stand-in that answers CFPs via the stock responder."""

    def __init__(self, name):
        super().__init__(name)
        self.responder = None
        self.verdicts = []  # ACCEPT/REJECT performatives received

    def setup(self):
        self.responder = ContractNetResponder(self)
        bidder = self

        class Answer(CyclicBehaviour):
            def step(self):
                message = yield from self.receive(MessageTemplate(
                    protocol=CONTRACT_NET))
                if message is None:
                    return
                if message.performative == Performative.CFP:
                    bidder.responder.bid(message)
                else:
                    bidder.verdicts.append(message.performative)

        self.add_behaviour(Answer())


class Mute(Agent):
    """Never answers anything (a dead/ignoring candidate)."""


@pytest.fixture
def arena(sim, network, transport):
    platform = AgentPlatform(sim, network, transport)
    root_host = network.add_host("root-host", "site1")
    root_container = platform.create_container("root-c", root_host)
    initiator_agent = Agent("root")
    root_container.deploy(initiator_agent)
    return sim, network, platform, initiator_agent


def _add_bidder(network, platform, name, cpu_capacity=10.0, knowledge=(),
                queue_fill=0.0):
    host = network.add_host(name + "-host", "site1",
                            cpu_capacity=cpu_capacity)
    container = platform.create_container(
        name + "-c", host, services=("analysis",), knowledge=knowledge)
    bidder = Bidder(name)
    container.deploy(bidder)
    if queue_fill:
        def hog():
            yield host.cpu.use(queue_fill)

        host.sim.spawn(hog())
        host.sim.spawn(hog())
    return bidder, container


def _negotiate(sim, initiator_agent, candidates, job=None, deadline=2.0):
    if job is None:
        job = PlacementJob("j1", "performance", 5, 100.0)
    initiator = ContractNetInitiator(initiator_agent, deadline=deadline)

    def run():
        outcome = yield from initiator.negotiate(job, candidates)
        return outcome

    process = sim.spawn(run())
    sim.run(until=100)
    return process.result


def test_fastest_host_wins(arena):
    sim, network, platform, root = arena
    _add_bidder(network, platform, "slow", cpu_capacity=5.0)
    _add_bidder(network, platform, "fast", cpu_capacity=50.0)
    outcome = _negotiate(sim, root, ["slow", "fast"])
    assert outcome.succeeded
    assert outcome.winner == "fast-c"
    assert set(outcome.bids) == {"slow-c", "fast-c"}

    # losers got REJECT, the winner ACCEPT
    sim.run(until=110)
    assert Performative.REJECT_PROPOSAL in platform.agent("slow").verdicts
    assert Performative.ACCEPT_PROPOSAL in platform.agent("fast").verdicts


def test_backlogged_host_loses(arena):
    sim, network, platform, root = arena
    _add_bidder(network, platform, "busy", cpu_capacity=10.0,
                queue_fill=500.0)
    _add_bidder(network, platform, "idle", cpu_capacity=10.0)
    outcome = _negotiate(sim, root, ["busy", "idle"])
    assert outcome.winner == "idle-c"


def test_specialist_refuses_foreign_cluster(arena):
    sim, network, platform, root = arena
    _add_bidder(network, platform, "storage-only",
                knowledge=("storage",))
    outcome = _negotiate(
        sim, root, ["storage-only"],
        job=PlacementJob("j1", "performance", 5, 100.0))
    assert not outcome.succeeded
    assert outcome.winner is None
    assert outcome.refusals == ["storage-only"]


def test_mute_candidate_times_out(arena):
    sim, network, platform, root = arena
    host = network.add_host("mute-host", "site1")
    container = platform.create_container("mute-c", host)
    container.deploy(Mute("mute"))
    _add_bidder(network, platform, "alive")
    outcome = _negotiate(sim, root, ["mute", "alive"], deadline=3.0)
    assert outcome.winner == "alive-c"
    assert "mute" not in outcome.bids


def test_all_mute_yields_no_winner(arena):
    sim, network, platform, root = arena
    host = network.add_host("mute-host", "site1")
    container = platform.create_container("mute-c", host)
    container.deploy(Mute("mute"))
    outcome = _negotiate(sim, root, ["mute"], deadline=2.0)
    assert not outcome.succeeded
    assert outcome.bids == {}


def test_tie_breaks_deterministically_by_name(arena):
    sim, network, platform, root = arena
    _add_bidder(network, platform, "bbb")
    _add_bidder(network, platform, "aaa")
    outcome = _negotiate(sim, root, ["bbb", "aaa"])
    assert outcome.winner == "aaa-c"


def test_rounds_are_isolated_conversations(arena):
    sim, network, platform, root = arena
    _add_bidder(network, platform, "only")
    initiator = ContractNetInitiator(root, deadline=2.0)

    def run():
        first = yield from initiator.negotiate(
            PlacementJob("j1", "performance", 5, 100.0), ["only"])
        second = yield from initiator.negotiate(
            PlacementJob("j2", "performance", 5, 100.0), ["only"])
        return first, second

    process = sim.spawn(run())
    sim.run(until=100)
    first, second = process.result
    assert first.winner == second.winner == "only-c"
    assert initiator.rounds == 2
