"""Tests for the processor grid: root brokering, analyzers, negotiation,
fault tolerance."""

import pytest

from repro.core.processor import CROSS_CLUSTER
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.baselines.centralized import default_devices
from repro.workloads.faults import FaultEvent, FaultPlan, apply_fault_plan


def small_grid_spec(seed=7, **overrides):
    parameters = dict(
        devices=default_devices(2),
        collector_hosts=[HostSpec("col1", "site1")],
        analysis_hosts=[HostSpec("inf1", "site1"), HostSpec("inf2", "site1")],
        storage_host=HostSpec("stor", "site1"),
        interface_host=HostSpec("iface", "site1"),
        seed=seed,
        dataset_threshold=6,
    )
    parameters.update(overrides)
    return GridTopologySpec(**parameters)


def run_workload(system, polls_per_type=2, expected_reports=1, timeout=2000):
    system.assign_goals(system.make_paper_goals(polls_per_type=polls_per_type))
    done = system.run_until_reports(expected_reports, timeout=timeout)
    return done


class TestRootBrokering:
    def test_analyzers_register_profiles(self):
        system = GridManagementSystem(small_grid_spec())
        system.run(until=5.0)
        assert system.root.analyzer_containers() == [
            "analysis-1", "analysis-2"]
        assert len(system.root.directory) == 2

    def test_jobs_divided_per_cluster(self):
        system = GridManagementSystem(small_grid_spec())
        assert run_workload(system)
        # one dataset, three group clusters + one cross job
        levels = [job.level for job in system.root.jobs.values()]
        assert levels.count(3) == 1
        assert levels.count(2) == 3
        clusters = {job.cluster for job in system.root.jobs.values()}
        assert clusters == {"performance", "storage", "traffic",
                            CROSS_CLUSTER}

    def test_analysis_work_reaches_analyzers(self):
        system = GridManagementSystem(small_grid_spec())
        assert run_workload(system)
        total_jobs = sum(a.jobs_completed for a in system.analyzers)
        assert total_jobs == 4
        total_records = sum(a.records_analyzed for a in system.analyzers)
        assert total_records == 6

    def test_work_spreads_across_containers(self):
        system = GridManagementSystem(small_grid_spec())
        assert run_workload(system, polls_per_type=4)
        busy = [a.jobs_completed for a in system.analyzers]
        assert all(count > 0 for count in busy)

    def test_report_reaches_interface_with_cross_level(self):
        system = GridManagementSystem(small_grid_spec())
        assert run_workload(system)
        assert system.root.reports_issued == 1
        report = system.interface.reports[0]
        assert report.records_analyzed == 6

    def test_cross_disabled_skips_level3(self):
        system = GridManagementSystem(small_grid_spec(enable_cross=False))
        assert run_workload(system)
        levels = [job.level for job in system.root.jobs.values()]
        assert 3 not in levels

    def test_analysis_detects_injected_faults(self):
        system = GridManagementSystem(small_grid_spec())
        system.devices["dev1"].inject_fault("cpu_runaway")
        system.devices["dev2"].inject_fault("cpu_runaway")
        assert run_workload(system, polls_per_type=2)
        findings = system.interface.all_findings()
        kinds = {finding.kind for finding in findings}
        assert "high-cpu" in kinds
        # two hot devices at one site -> level-3 site-overload incident
        assert "site-overload" in kinds
        assert len(system.interface.alerts) > 0

    def test_interface_down_detected_via_traffic_rules(self):
        system = GridManagementSystem(small_grid_spec())
        system.devices["dev1"].inject_fault("interface_down", interface=0)
        assert run_workload(system, polls_per_type=2)
        kinds = {finding.kind for finding in system.interface.all_findings()}
        assert "interface-down" in kinds


class TestNegotiatedPlacement:
    def test_contract_net_awards_jobs(self):
        system = GridManagementSystem(small_grid_spec(policy="negotiated"))
        assert run_workload(system)
        assert system.root.negotiator.rounds == 4
        total_bids = sum(a.responder.proposals_sent for a in system.analyzers)
        assert total_bids > 0
        assert system.root.reports_issued == 1

    def test_knowledge_specialists_refuse_foreign_cfps(self):
        spec = small_grid_spec(
            policy="negotiated",
            analysis_hosts=[
                HostSpec("inf1", "site1", knowledge=("performance",)),
                HostSpec("inf2", "site1",
                         knowledge=("storage", "traffic", CROSS_CLUSTER)),
            ],
        )
        system = GridManagementSystem(spec)
        assert run_workload(system)
        refusals = sum(a.responder.refusals_sent for a in system.analyzers)
        # NegotiatedPolicy pre-filters by knowledge, so refusals stay rare,
        # but specialist assignment must hold:
        perf_analyzer = system.analyzers[0]
        assert perf_analyzer.records_analyzed == 2  # only performance cluster
        assert refusals == 0


class TestFaultTolerance:
    def test_container_death_triggers_redispatch(self):
        # inf1 is made very slow and fed via round-robin, so it is
        # guaranteed to hold an in-flight job when it dies at t=30.
        spec = small_grid_spec(
            job_timeout=10.0, dataset_threshold=3, policy="round-robin",
            analysis_hosts=[
                HostSpec("inf1", "site1", cpu_capacity=0.5),
                HostSpec("inf2", "site1", cpu_capacity=10.0),
            ],
        )
        system = GridManagementSystem(spec)
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=30.0, kind="container_down", target="analysis-1"),
        ]))
        done = system.run_until_records(12, timeout=4000)
        assert done
        assert system.root.jobs_redispatched > 0
        assert sum(r.records_analyzed for r in system.interface.reports) >= 12
        # all post-fault work ran on the survivor
        assert system.analyzers[1].jobs_completed > 0

    def test_unknown_fault_target_raises(self):
        system = GridManagementSystem(small_grid_spec())
        with pytest.raises(KeyError):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="container_down", target="ghost"),
            ]))
        with pytest.raises(KeyError):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="cpu_runaway", target="ghost-dev"),
            ]))

    def test_abandonment_after_max_attempts(self):
        # kill ALL analyzers: jobs can never complete; the root must give
        # up after max_attempts and still emit a (partial) report.
        spec = small_grid_spec(job_timeout=2.0, dataset_threshold=3,
                               analysis_hosts=[HostSpec("inf1", "site1")])
        system = GridManagementSystem(spec)
        system.root.max_attempts = 2
        system.root.placement_patience = 15.0
        system.assign_goals(system.make_paper_goals(polls_per_type=1))
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=6.0, kind="container_down", target="analysis-1"),
        ]))
        system.run(until=600)
        assert system.root.jobs_abandoned > 0
        assert system.root.reports_issued >= 1


class TestHeartbeatFailureDetection:
    def _hb_spec(self, **overrides):
        parameters = dict(
            job_timeout=40.0, dataset_threshold=3, policy="round-robin",
            heartbeat_interval=2.0,  # timeout derives to 8s
            analysis_hosts=[
                HostSpec("inf1", "site1", cpu_capacity=0.5),
                HostSpec("inf2", "site1", cpu_capacity=10.0),
            ],
        )
        parameters.update(overrides)
        return small_grid_spec(**parameters)

    def test_heartbeat_defaults_off(self):
        system = GridManagementSystem(small_grid_spec())
        system.run(until=20)
        assert system.root.heartbeat_timeout is None
        assert system.root.heartbeats_received == 0
        assert all(a.heartbeats_sent == 0 for a in system.analyzers)

    def test_heartbeats_flow_when_enabled(self):
        system = GridManagementSystem(self._hb_spec())
        system.run(until=20)
        assert system.root.heartbeat_timeout == 8.0
        assert all(a.heartbeats_sent >= 5 for a in system.analyzers)
        assert system.root.heartbeats_received >= 10
        assert system.root.containers_evicted == 0

    def test_eviction_beats_the_reaper(self):
        # Same setup as the Reaper re-dispatch test, but with heartbeats
        # the dead container is evicted within the heartbeat timeout --
        # well under half the job timeout -- instead of waiting out the
        # job deadline.
        system = GridManagementSystem(self._hb_spec())
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=30.0, kind="container_down", target="analysis-1"),
        ]))
        assert system.run_until_records(12, timeout=4000)
        assert system.root.containers_evicted == 1
        (container, evicted_at), = system.root.evictions
        assert container == "analysis-1"
        detection_delay = evicted_at - 30.0
        assert 0 < detection_delay < system.root.job_timeout / 2
        assert system.root.jobs_redispatched > 0
        assert "analysis-1" not in system.root.analyzer_containers()

    def test_returned_container_is_reregistered(self):
        # Take the container's HOST down (beacons stop, eviction fires),
        # then bring it back: beacons resume and the root re-registers
        # the very same container.
        system = GridManagementSystem(self._hb_spec())
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=10.0, kind="host_down", target="inf1",
                       clear_after=15.0),
        ]))
        system.run(until=60)
        assert system.root.containers_evicted >= 1
        assert system.root.containers_recovered >= 1
        assert "analysis-1" in system.root.analyzer_containers()

    def test_all_containers_dead_finalizes_with_error_report(self):
        # Grid-root exhaustion: every analyzer container dies mid-run.
        # The root must abandon gracefully -- report finalized with an
        # analysis-abandoned error finding -- and must not hang.
        system = GridManagementSystem(self._hb_spec())
        system.root.placement_patience = 15.0
        system.root.max_attempts = 2
        system.assign_goals(system.make_paper_goals(polls_per_type=1))
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=6.0, kind="container_down", target="analysis-1"),
            FaultEvent(at=6.0, kind="container_down", target="analysis-2"),
        ]))
        system.run(until=600)
        assert system.root.containers_evicted == 2
        assert system.root.jobs_abandoned > 0
        assert system.root.reports_issued >= 1
        kinds = {f.kind for f in system.interface.all_findings()}
        assert "analysis-abandoned" in kinds
        abandoned = [f for f in system.interface.all_findings()
                     if f.kind == "analysis-abandoned"]
        assert all(f.severity == "major" for f in abandoned)
        assert all("reason" in f.detail for f in abandoned)


class TestFeedbackLoop:
    def test_learned_rule_applies_to_later_datasets(self):
        from repro.rules.conditions import GT, Pattern, Var
        from repro.rules.engine import Rule

        spec = small_grid_spec(dataset_threshold=3)
        system = GridManagementSystem(spec)
        # a rule the stock KB does not have: flag any proc_count over 1
        eager = Rule(
            "proc-watch",
            [Pattern("sample", bind="sample", metric="proc_count",
                     value=GT(1), device=Var("device"), site=Var("site"))],
            lambda context: context.assert_fact(
                "problem", kind="proc-watch", severity="warning",
                device=context["device"], site=context["site"],
                value=context["sample"]["value"], metric="proc_count"),
            group="storage", level=1,
        )
        skipped = system.interface.submit_rule(
            eager, [a.name for a in system.analyzers])
        assert skipped == []
        system.assign_goals(system.make_paper_goals(polls_per_type=1))
        assert system.run_until_reports(1, timeout=2000)
        kinds = {finding.kind for finding in system.interface.all_findings()}
        assert "proc-watch" in kinds
        # learning is recorded in the analyzer knowledge bases
        assert all("proc-watch" in a.knowledge_base.learned
                   for a in system.analyzers)
