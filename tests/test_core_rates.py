"""Tests for the classifier's counter-to-rate derivation."""

import pytest

from repro.agents.platform import AgentPlatform
from repro.core.classifier import ClassifierAgent
from repro.core.records import ManagementRecord, Sample
from repro.core.storage import ManagementDataStore
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.simkernel.simulator import Simulator


def traffic_record(device, octets, time, instance=1):
    sample = Sample(device, "s1", "traffic", "if_in_octets", octets, time,
                    instance=instance)
    return ManagementRecord(
        device, "s1", "C", "traffic", [sample], time,
        size_units=1.5, parsed=True,
    )


@pytest.fixture
def classifier_world():
    sim = Simulator(seed=3)
    network = Network(sim)
    host = network.add_host("stor", "site1", role="storage")
    transport = Transport(network)
    platform = AgentPlatform(sim, network, transport)
    container = platform.create_container("sc", host)
    store = ManagementDataStore(host)
    classifier = ClassifierAgent(
        "classifier", store=store, processor_name="nobody",
        dataset_threshold=1000, flush_timeout=1000.0,
    )
    container.deploy(classifier)
    return sim, classifier, store


def _classify(sim, classifier, records):
    process = sim.spawn(classifier._classify_batch(records))
    sim.run(until=sim.now + 100)
    assert process.done


class TestRateDerivation:
    def test_first_observation_seeds_no_rate(self, classifier_world):
        sim, classifier, store = classifier_world
        _classify(sim, classifier, [traffic_record("r1", 1000, 1.0)])
        assert store.history("r1", "if_in_rate", 1) == []

    def test_second_observation_yields_rate(self, classifier_world):
        sim, classifier, store = classifier_world
        _classify(sim, classifier, [traffic_record("r1", 1000, 1.0)])
        _classify(sim, classifier, [traffic_record("r1", 3000, 3.0)])
        points = store.history("r1", "if_in_rate", 1)
        assert len(points) == 1
        assert points[0][1] == pytest.approx(1000.0)  # (3000-1000)/(3-1)

    def test_counter_wrap_reseeds(self, classifier_world):
        sim, classifier, store = classifier_world
        _classify(sim, classifier, [traffic_record("r1", 5000, 1.0)])
        _classify(sim, classifier, [traffic_record("r1", 100, 2.0)])  # wrap
        assert store.history("r1", "if_in_rate", 1) == []
        _classify(sim, classifier, [traffic_record("r1", 600, 3.0)])
        points = store.history("r1", "if_in_rate", 1)
        assert points[0][1] == pytest.approx(500.0)

    def test_instances_tracked_independently(self, classifier_world):
        sim, classifier, store = classifier_world
        _classify(sim, classifier, [
            traffic_record("r1", 1000, 1.0, instance=1),
            traffic_record("r1", 9000, 1.0, instance=2),
        ])
        _classify(sim, classifier, [
            traffic_record("r1", 2000, 2.0, instance=1),
            traffic_record("r1", 19000, 2.0, instance=2),
        ])
        assert store.history("r1", "if_in_rate", 1)[0][1] == \
            pytest.approx(1000.0)
        assert store.history("r1", "if_in_rate", 2)[0][1] == \
            pytest.approx(10000.0)

    def test_devices_tracked_independently(self, classifier_world):
        sim, classifier, store = classifier_world
        _classify(sim, classifier, [traffic_record("r1", 1000, 1.0)])
        _classify(sim, classifier, [traffic_record("r2", 5000, 2.0)])
        # r2's first sample must not pair with r1's
        assert store.history("r2", "if_in_rate", 1) == []

    def test_non_counter_metrics_untouched(self, classifier_world):
        sim, classifier, store = classifier_world
        sample = Sample("r1", "s1", "performance", "cpu_load", 50.0, 1.0)
        record = ManagementRecord(
            "r1", "s1", "A", "performance", [sample], 1.0,
            size_units=1.5, parsed=True,
        )
        _classify(sim, classifier, [record])
        assert len(record.samples) == 1
