"""Tests for reactive collection, JSON export and the CLI."""

import json

import pytest

from repro.core.reactive import ReactiveCollectionService
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.baselines.centralized import default_devices
from repro.evaluation import export
from repro.evaluation.accounting import UtilizationReport
from repro import cli


def small_spec(seed=4):
    return GridTopologySpec(
        devices=default_devices(2),
        collector_hosts=[HostSpec("col1"), HostSpec("col2")],
        analysis_hosts=[HostSpec("inf1")],
        storage_host=HostSpec("stor"),
        interface_host=HostSpec("iface"),
        seed=seed,
        dataset_threshold=2,
    )


class TestReactiveCollection:
    @pytest.fixture
    def reactive_world(self):
        system = GridManagementSystem(small_spec())
        service = ReactiveCollectionService(
            system.network.host("iface"), system.transport,
            system.collectors, cooldown=5.0,
        )
        return system, service

    def test_trap_triggers_immediate_poll(self, reactive_world):
        system, service = reactive_world
        before = sum(c.polls_completed for c in system.collectors)
        service.sink.emit_from(system.devices["dev1"], "cpuHigh",
                               severity="major")
        system.run(until=30)
        after = sum(c.polls_completed for c in system.collectors)
        assert after == before + 1
        assert service.reactions == 1

    def test_trap_kind_selects_request_type(self, reactive_world):
        system, service = reactive_world
        service.sink.emit_from(system.devices["dev1"], "linkDown")
        system.run(until=30)
        # a type-C poll produces traffic-group records at the classifier
        assert system.classifier.records_classified == 1
        cluster_jobs = [
            job.cluster for job in system.root.jobs.values() if job.level < 3
        ]
        # dataset_threshold=2: not yet published; check store instead
        assert system.store.records_stored in (0, 1) or cluster_jobs

    def test_cooldown_suppresses_storms(self, reactive_world):
        system, service = reactive_world
        for _ in range(5):
            service.sink.emit_from(system.devices["dev1"], "linkDown")
        system.run(until=2)
        assert service.reactions == 1
        assert service.suppressed == 4
        system.run(until=10)
        service.sink.emit_from(system.devices["dev1"], "linkDown")
        system.run(until=12)
        assert service.reactions == 2

    def test_reactions_round_robin_collectors(self, reactive_world):
        system, service = reactive_world
        service.sink.emit_from(system.devices["dev1"], "cpuHigh")
        system.run(until=7)
        service.sink.emit_from(system.devices["dev2"], "cpuHigh")
        system.run(until=30)
        assert all(c.polls_completed == 1 for c in system.collectors)

    def test_requires_collectors(self, reactive_world):
        system, _ = reactive_world
        with pytest.raises(ValueError):
            ReactiveCollectionService(
                system.network.host("stor"), system.transport, [])

    def test_stats(self, reactive_world):
        system, service = reactive_world
        service.sink.emit_from(system.devices["dev1"], "cpuHigh")
        system.run(until=5)
        stats = service.stats()
        assert stats == {"traps_received": 1, "reactions": 1,
                         "suppressed": 0}


class TestExport:
    def _report(self):
        system = GridManagementSystem(small_spec())
        system.network.host("col1").cpu.charge(10, "x")
        return UtilizationReport.from_hosts(
            "r", system.management_hosts(), horizon=10.0, makespan=8.0)

    def test_utilization_round_trip(self, tmp_path):
        report = self._report()
        path = tmp_path / "report.json"
        export.dump_json(export.utilization_report_to_dict(report), str(path))
        loaded = export.utilization_report_from_dict(
            export.load_json(str(path)))
        assert loaded.label == report.label
        assert loaded.makespan == report.makespan
        assert loaded.host("col1").cpu_units == 10.0
        assert loaded.host_names() == report.host_names()

    def test_finding_serialization_drops_non_json_detail(self):
        from repro.core.reports import Finding

        finding = Finding("k", "major", "d1", "s1",
                          detail={"ok": 1, "bad": object()})
        payload = export.finding_to_dict(finding)
        assert payload["detail"] == {"ok": 1}
        json.dumps(payload)  # must be serializable

    def test_run_result_serialization(self):
        from repro.baselines.driver import run_architecture

        result = run_architecture(small_spec(), "grid", polls_per_type=1,
                                  timeout=2000)
        payload = export.run_result_to_dict(result)
        text = json.dumps(payload)
        assert "grid" in text
        assert payload["records_analyzed"] == 3

    def test_management_report_serialization(self):
        from repro.core.reports import Finding, ManagementReport

        report = ManagementReport(
            "ds", [Finding("k", "minor", "d")], 3, 1.5)
        payload = export.management_report_to_dict(report)
        assert payload["records_analyzed"] == 3
        json.dumps(payload)


class TestCli:
    def test_table1(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Request A" in out
        assert "Inference AxBxC" in out

    def test_quickstart_with_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert cli.main(["quickstart", "--polls", "1", "--seed", "3",
                         "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["records_analyzed"] == 3
        assert capsys.readouterr().out.strip()

    def test_quickstart_reliable_loss_free_byte_identical(self, tmp_path):
        """Redelivery machinery must be inert on loss-free links.

        Same seed, same workload, reliable channel both times -- one run
        with the redelivery scheduler enabled (what ``--reliable``
        installs) and one without: with zero loss nothing ever
        dead-letters, parks or redelivers, so enabling redelivery must
        leave the exported JSON byte-for-byte unchanged.  (The channel
        itself is *not* free -- ACK traffic shows up in network cost --
        which is why the baseline also runs the channel.)
        """
        from repro.baselines.driver import run_architecture
        from repro.core.system import GridTopologySpec

        paths = {}
        for label, reliability in (
                ("baseline", True),
                ("redelivery", {"redelivery": True})):
            spec = GridTopologySpec.paper_figure6c(
                seed=7, dataset_threshold=6, reliability=reliability)
            result = run_architecture(spec, "grid", polls_per_type=2)
            path = tmp_path / (label + ".json")
            export.dump_json(export.run_result_to_dict(result), str(path))
            paths[label] = path
        assert (paths["baseline"].read_bytes()
                == paths["redelivery"].read_bytes())

    def test_quickstart_reliable_repeat_runs_identical(self, tmp_path,
                                                       capsys):
        """Two --reliable runs with one seed are themselves deterministic."""
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        for path in (first, second):
            assert cli.main(["quickstart", "--polls", "2", "--seed", "7",
                             "--reliable", "--json", str(path)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_figure6_small(self, capsys):
        assert cli.main(["figure6", "--polls", "2"]) == 0
        out = capsys.readouterr().out
        assert "winner first:" in out
        assert "grid" in out

    def test_federation_siloed(self, tmp_path, capsys):
        path = tmp_path / "fed.json"
        assert cli.main(["federation", "--mode", "siloed", "--polls", "2",
                         "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["mode"] == "siloed"
        assert payload["records"] == 12

    def test_crossover_small(self, capsys):
        assert cli.main(["crossover", "--points", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "crossover sweep:" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["divine"])
