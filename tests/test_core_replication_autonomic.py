"""Tests for storage replication/failover and the autonomic mobility
balancer (the paper's future-work features)."""

import pytest

from repro.core.autonomic import MobilityBalancer
from repro.core.replication import ReplicationService, attach_failover
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.baselines.centralized import default_devices


def replicated_system(seed=6):
    spec = GridTopologySpec(
        devices=default_devices(2),
        collector_hosts=[HostSpec("col1")],
        analysis_hosts=[HostSpec("inf1")],
        storage_host=HostSpec("stor"),
        interface_host=HostSpec("iface"),
        seed=seed,
        dataset_threshold=6,
    )
    system = GridManagementSystem(spec)
    replica_host = system.network.add_host("stor-replica", "site1",
                                           role="storage")
    service = ReplicationService(system, replica_host, lag=0.2)
    return system, service


class TestReplication:
    def test_writes_mirror_to_replica(self):
        system, service = replicated_system()
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        system.sim.run(until=system.sim.now + 10)
        assert service.records_replicated == 6
        assert service.replica_store.records_stored == \
            system.store.records_stored == 6

    def test_replication_costs_are_charged(self):
        system, service = replicated_system()
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        system.sim.run(until=system.sim.now + 10)
        replica_host = service.replica_store.host
        # shipping charged both NICs; storing charged replica CPU+disk
        assert replica_host.nic.total_units > 0
        assert replica_host.disk.units_by_label["store"] > 0
        assert system.store.host.nic.units_by_label["acl"] > 0

    def test_replica_datasets_mirror_clusters(self):
        system, service = replicated_system()
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        system.sim.run(until=system.sim.now + 10)
        primary_datasets = system.store.dataset_ids()
        for dataset_id in primary_datasets:
            assert service.replica_store.clusters_of(dataset_id) == \
                system.store.clusters_of(dataset_id)

    def test_history_usable_on_replica(self):
        system, service = replicated_system()
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        system.sim.run(until=system.sim.now + 10)
        assert service.replica_store.baseline("dev1", "cpu_load") is not None


class TestFailover:
    def test_fetch_fails_over_when_primary_agent_dies(self):
        system, service = replicated_system()
        for analyzer in system.analyzers:
            attach_failover(analyzer, service.failover_storage_host(),
                            fetch_timeout=10.0)
        # kill the primary storage agent once collection is underway; the
        # classifier keeps storing locally (and replicating), but fetches
        # can only be answered by the replica.
        def kill_primary_agent():
            system.storage_container.remove(system.storage_agent)

        system.sim.schedule(1.0, kill_primary_agent)
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        completed = system.run_until_records(6, timeout=3000)
        assert completed
        assert sum(a.fetch_failovers for a in system.analyzers) > 0
        assert service.replica_store.fetches_served > 0

    def test_no_failover_when_primary_healthy(self):
        system, service = replicated_system()
        for analyzer in system.analyzers:
            attach_failover(analyzer, service.failover_storage_host(),
                            fetch_timeout=10.0)
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        assert sum(a.fetch_failovers for a in system.analyzers) == 0
        assert service.replica_store.fetches_served == 0


class TestMobilityBalancer:
    @pytest.fixture
    def world(self, sim, network, transport, platform):
        hot_host = network.add_host("hot", "site1", cpu_capacity=2.0)
        cool_host = network.add_host("cool", "site1", cpu_capacity=20.0)
        hot = platform.create_container("hot-c", hot_host,
                                        services=("analysis",))
        cool = platform.create_container("cool-c", cool_host,
                                         services=("analysis",))
        return sim, platform, hot, cool

    def _deploy_analyzer(self, container, name="mobile-analyzer"):
        from repro.core.processor import AnalyzerAgent
        from repro.rules.stdlib import standard_knowledge_base

        analyzer = AnalyzerAgent(
            name, root_name="nobody",
            knowledge_base=standard_knowledge_base(),
            register_on_start=False,
        )
        container.deploy(analyzer)
        return analyzer

    def _hog(self, sim, host, units):
        def burn():
            yield host.cpu.use(units)

        sim.spawn(burn())

    def test_pressure_reflects_backlog_and_capacity(self, world):
        sim, platform, hot, cool = world
        assert MobilityBalancer.pressure(hot) == 0.0
        for _ in range(3):
            self._hog(sim, hot.host, 50.0)
        sim.run(until=0.1)
        # 2 queued behind 1 in service -> queue_length 2 -> 40 units / 2 cap
        assert MobilityBalancer.pressure(hot) == pytest.approx(20.0)

    def test_migrates_agent_off_hot_host(self, world):
        sim, platform, hot, cool = world
        analyzer = self._deploy_analyzer(hot)
        balancer = MobilityBalancer(platform, [hot, cool], period=5.0,
                                    imbalance_threshold=5.0)
        for _ in range(4):
            self._hog(sim, hot.host, 100.0)
        # resources are non-preemptive: the migration's serialization jumps
        # the queue but still waits out the hog already in service (50 s)
        sim.run(until=120.0)
        assert balancer.migrations >= 1
        assert analyzer.container is cool
        actions = [decision.action for decision in balancer.decisions]
        assert "migrate" in actions

    def test_holds_when_balanced(self, world):
        sim, platform, hot, cool = world
        self._deploy_analyzer(hot)
        balancer = MobilityBalancer(platform, [hot, cool], period=5.0,
                                    imbalance_threshold=5.0)
        sim.run(until=20.0)
        assert balancer.migrations == 0
        assert all(decision.action == "hold"
                   for decision in balancer.decisions)

    def test_max_migrations_cap(self, world):
        sim, platform, hot, cool = world
        self._deploy_analyzer(hot, "a1")
        self._deploy_analyzer(hot, "a2")
        balancer = MobilityBalancer(platform, [hot, cool], period=2.0,
                                    imbalance_threshold=1.0,
                                    max_migrations=1)

        def keep_hot():
            while True:
                yield hot.host.cpu.use(50.0)

        sim.spawn(keep_hot())
        sim.spawn(keep_hot())
        sim.spawn(keep_hot())
        sim.run(until=60.0)
        assert balancer.migrations == 1

    def test_requires_two_containers(self, world):
        sim, platform, hot, cool = world
        with pytest.raises(ValueError):
            MobilityBalancer(platform, [hot])

    def test_stop_halts_loop(self, world):
        sim, platform, hot, cool = world
        self._deploy_analyzer(hot)
        balancer = MobilityBalancer(platform, [hot, cool], period=2.0)
        sim.run(until=5.0)
        decisions_before = len(balancer.decisions)
        balancer.stop()
        sim.run(until=30.0)
        assert len(balancer.decisions) == decisions_before
