"""Tests for the consistent-hash sharded classifier/storage grid.

Three layers of guarantees:

* the :mod:`repro.core.sharding` ring itself (balance, minimal remap,
  memo consistency) -- property-based;
* the sharded deployment's *equivalence* to the paper reproduction
  (scatter-gather level-3 correlation finds the same things, and
  ``shards=1`` stays byte-identical);
* the rebalance protocol's no-silent-loss invariant on shard join/leave.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import HashRing, moved_keys, stable_hash
from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)

KEYS = ["dev-%d" % index for index in range(2000)]


def _ring(node_count, vnodes):
    return HashRing(
        ["shard-%d" % index for index in range(node_count)], vnodes=vnodes,
    )


class TestStableHash:
    def test_deterministic_across_instances(self):
        assert stable_hash("dev1") == stable_hash("dev1")
        assert stable_hash(b"dev1") == stable_hash("dev1")

    def test_pinned_value(self):
        # Byte-identity discipline: shard ownership must never drift
        # between runs or Python versions (unlike builtin hash()).
        assert stable_hash("dev1") == 0xCEA099A8F5AC3E28


class TestRingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        node_count=st.integers(min_value=2, max_value=10),
        vnodes=st.sampled_from([8, 16, 32, 64]),
    )
    def test_balance_within_2x_ideal(self, node_count, vnodes):
        ring = _ring(node_count, vnodes)
        counts = {}
        for key in KEYS:
            owner = ring.lookup(key)
            counts[owner] = counts.get(owner, 0) + 1
        ideal = len(KEYS) / node_count
        assert max(counts.values()) <= 2.0 * ideal
        assert len(counts) == node_count  # nobody starves entirely

    @settings(max_examples=40, deadline=None)
    @given(
        node_count=st.integers(min_value=2, max_value=10),
        vnodes=st.sampled_from([8, 16, 32, 64]),
    )
    def test_join_remaps_about_one_nth_toward_joiner(self, node_count, vnodes):
        ring = _ring(node_count, vnodes)
        before = ring.owners(KEYS)
        ring.add_node("joiner")
        after = ring.owners(KEYS)
        moved = moved_keys(before, after)
        # Minimal remap: about 1/(n+1) of keys move (bounded well below
        # the ~100% a mod-N scheme would reshuffle) ...
        assert 0 < len(moved) <= 2.5 * len(KEYS) / (node_count + 1)
        # ... and every move lands on the joiner.
        assert all(new == "joiner" for _, new in moved.values())

    @settings(max_examples=40, deadline=None)
    @given(
        node_count=st.integers(min_value=3, max_value=10),
        vnodes=st.sampled_from([8, 16, 32, 64]),
    )
    def test_leave_remaps_only_the_leavers_keys(self, node_count, vnodes):
        ring = _ring(node_count, vnodes)
        before = ring.owners(KEYS)
        ring.remove_node("shard-0")
        after = ring.owners(KEYS)
        moved = moved_keys(before, after)
        assert 0 < len(moved) <= 2.5 * len(KEYS) / node_count
        assert all(old == "shard-0" for old, _ in moved.values())
        # Keys not owned by the leaver never move.
        untouched = [key for key, owner in before.items() if owner != "shard-0"]
        assert all(after[key] == before[key] for key in untouched)

    @settings(max_examples=20, deadline=None)
    @given(
        node_count=st.integers(min_value=2, max_value=6),
        vnodes=st.sampled_from([8, 32]),
    )
    def test_memo_survives_membership_changes(self, node_count, vnodes):
        # The memoized lookup must agree with a cold ring after add/remove.
        ring = _ring(node_count, vnodes)
        for key in KEYS[:200]:
            ring.lookup(key)  # warm the memo
        ring.add_node("joiner")
        ring.remove_node("shard-0")
        cold = HashRing(ring.nodes(), vnodes=vnodes)
        assert ring.owners(KEYS[:200]) == cold.owners(KEYS[:200])

    def test_membership_errors(self):
        ring = _ring(2, 8)
        with pytest.raises(ValueError):
            ring.add_node("shard-0")
        with pytest.raises(ValueError):
            ring.remove_node("ghost")
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(LookupError):
            HashRing().lookup("dev1")


# -- sharded deployment ------------------------------------------------------


def _sharded_spec(shards, devices=4, seed=11, **overrides):
    parameters = dict(
        devices=[
            DeviceSpec("dev%d" % index, "server", "site1")
            for index in range(1, devices + 1)
        ],
        collector_hosts=[HostSpec("col1", "site1")],
        analysis_hosts=[HostSpec("inf1", "site1"), HostSpec("inf2", "site1")],
        storage_host=HostSpec("stor", "site1"),
        interface_host=HostSpec("iface", "site1"),
        seed=seed,
        cluster_strategy="by-device",
        shards=shards,
    )
    parameters.update(overrides)
    return GridTopologySpec(**parameters)


def _canonical_findings(system):
    return {
        (finding.kind, finding.severity, finding.device, finding.site)
        for finding in system.interface.all_findings()
    }


class TestScatterGatherEquivalence:
    def _run(self, shards):
        system = GridManagementSystem(
            _sharded_spec(shards, lazy_devices=False))
        system.devices["dev1"].inject_fault("cpu_runaway")
        system.devices["dev2"].inject_fault("cpu_runaway")
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        assert system.run_until_records(12, timeout=4000)
        system.stop_devices()
        return system

    def test_sharded_level3_equals_unsharded(self):
        unsharded = self._run(1)
        sharded = self._run(3)
        assert _canonical_findings(sharded) == _canonical_findings(unsharded)
        # Both must actually reach level-3 correlation (the incident that
        # needs problems from more than one device/shard).
        for system in (unsharded, sharded):
            kinds = {f.kind for f in system.interface.all_findings()}
            assert "site-overload" in kinds
            assert any(
                f.level >= 3 for f in system.interface.all_findings())
        # The sharded run got there via scatter-gather, not a single lane.
        assert sharded.root.scatter_rounds > 0
        assert sharded.root.scatter_fanout_total >= len(sharded.stores) - 1
        assert sum(s.records_stored for s in sharded.stores) == 12
        assert all(s.records_stored > 0 for s in sharded.stores[:1])

    def test_records_route_by_ring_owner(self):
        system = self._run(3)
        for device, dev in system.devices.items():
            owner = system.ring.lookup(device)
            holders = [
                host for host, store in system._store_by_host.items()
                if device in store.devices_held()
            ]
            assert holders == [owner]


class TestShards1ByteIdentity:
    def test_figure6_double_run_bytes_identical(self):
        """shards=1 runs the exact paper path: two runs, identical bytes."""
        from repro.baselines.driver import run_figure6
        from repro.evaluation import export

        def render():
            results = run_figure6(polls_per_type=3, seed=42)
            reports = "\n".join(
                results[label].report.render()
                for label in ("centralized", "multiagent", "grid"))
            payload = json.dumps(
                {label: export.run_result_to_dict(result)
                 for label, result in results.items()},
                sort_keys=True)
            return reports + "\n" + payload

        assert render() == render()

    def test_shards1_builds_no_ring_and_no_mux(self):
        system = GridManagementSystem(_sharded_spec(1))
        assert system.ring is None
        assert system._flush_mux is None
        assert len(system.stores) == 1
        assert system.classifier.external_flush is False
        with pytest.raises(RuntimeError):
            system.add_storage_shard()
        with pytest.raises(RuntimeError):
            system.remove_storage_shard("stor")


class TestRebalance:
    def _system(self):
        system = GridManagementSystem(
            _sharded_spec(2, devices=3, seed=5))
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        assert system.run_until_records(12, timeout=4000)
        return system

    def _conservation(self, system):
        records = sum(store.records_stored for store in system.stores)
        points = sum(
            len(points)
            for store in system.stores
            for points in store._history.values()
        )
        return records, points

    def _assert_ownership(self, system):
        for device in system.devices:
            owner = system.ring.lookup(device)
            holders = [
                host for host, store in system._store_by_host.items()
                if device in store.devices_held()
            ]
            assert holders == [owner], (device, owner, holders)

    def test_join_then_leave_loses_nothing(self):
        system = self._system()
        before = self._conservation(system)

        host, storage_agent, classifier = system.add_storage_shard()
        system.sim.run(until=system.sim.now + 150.0)
        assert self._conservation(system) == before
        assert system.rebalances == 1
        assert system.records_rebalanced > 0
        self._assert_ownership(system)

        system.remove_storage_shard(system.shard_hosts[0].name)
        system.sim.run(until=system.sim.now + 150.0)
        assert self._conservation(system) == before
        assert system.rebalances == 2
        self._assert_ownership(system)

        # New records route to the post-rebalance layout and the pipeline
        # still completes end to end.
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(18, timeout=4000)
        system.stop_devices()
        assert sum(s.records_stored for s in system.stores) == 18

    def test_remove_guards(self):
        system = GridManagementSystem(_sharded_spec(2, devices=3, seed=5))
        with pytest.raises(ValueError):
            system.remove_storage_shard("ghost")
        system.remove_storage_shard(system.shard_hosts[1].name)
        with pytest.raises(ValueError):
            system.remove_storage_shard(system.shard_hosts[0].name)


class TestShardMetrics:
    def test_shard_metrics_in_snapshot(self):
        system = GridManagementSystem(
            _sharded_spec(2, devices=3, seed=5, telemetry=True))
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        assert system.run_until_records(12, timeout=4000)
        system.stop_devices()
        snapshot = system.telemetry.metrics_snapshot()
        gauges = snapshot["registry"]["gauges"]
        assert gauges["shard.records{shard=0}"] + \
            gauges["shard.records{shard=1}"] == 12
        assert "shard.scatter_fanout" in gauges
        storage_sources = [
            source for source in snapshot["sources"]
            if source["labels"].get("grid") == "storage"
            and "shards" in source["metrics"]
        ]
        assert storage_sources
        metrics = storage_sources[0]["metrics"]
        assert metrics["shards"] == 2
        assert metrics["scatter_rounds"] >= 1

    def test_rebalance_counter(self):
        system = GridManagementSystem(
            _sharded_spec(2, devices=3, seed=5, telemetry=True))
        system.assign_goals(system.make_paper_goals(polls_per_type=4))
        assert system.run_until_records(12, timeout=4000)
        system.add_storage_shard()
        system.sim.run(until=system.sim.now + 150.0)
        system.stop_devices()
        counters = system.telemetry.metrics_snapshot()["registry"]["counters"]
        assert counters.get("shard.rebalanced", 0) > 0
