"""Unit tests for the management data store and storage agent."""

import pytest

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.platform import AgentPlatform
from repro.core.records import ManagementRecord, Sample
from repro.core.storage import ManagementDataStore, StorageAgent, new_dataset_id
from repro.network.topology import Network
from repro.network.transport import Transport
from repro.simkernel.simulator import Simulator


def make_record(device="d1", metric="cpu_load", value=50.0, time=1.0,
                group="performance", request_type="A"):
    sample = Sample(device, "s1", group, metric, value, time)
    return ManagementRecord(
        device, "s1", request_type, group, [sample], time,
        size_units=1.5, parsed=True,
    )


@pytest.fixture
def world():
    sim = Simulator(seed=2)
    network = Network(sim)
    storage_host = network.add_host("stor", "site1", role="storage")
    client_host = network.add_host("client", "site1", role="analysis")
    transport = Transport(network)
    platform = AgentPlatform(sim, network, transport)
    store = ManagementDataStore(storage_host)
    return sim, network, platform, store, storage_host, client_host


class TestDataStore:
    def test_store_charges_cpu_and_disk(self, world):
        sim, _, _, store, storage_host, _ = world

        def proc():
            stored = yield from store.store_records([make_record()])
            return stored

        process = sim.spawn(proc())
        sim.run(until=100)
        assert process.result == 1
        cost = store.cost_model.store_cost()
        assert storage_host.cpu.units_by_label["store"] == cost.cpu
        assert storage_host.disk.units_by_label["store"] == cost.disk

    def test_empty_store_is_noop(self, world):
        sim, _, _, store, storage_host, _ = world

        def proc():
            stored = yield from store.store_records([])
            return stored

        process = sim.spawn(proc())
        sim.run(until=10)
        assert process.result == 0
        assert storage_host.cpu.total_units == 0

    def test_dataset_clustering(self, world):
        sim, _, _, store, _, _ = world
        records = [
            make_record(metric="cpu_load", group="performance"),
            make_record(metric="disk_free", group="storage",
                        request_type="B"),
            make_record(metric="cpu_load", group="performance", device="d2"),
        ]

        def proc():
            yield from store.store_records(records, dataset_id="ds-t")

        sim.spawn(proc())
        sim.run(until=100)
        assert store.clusters_of("ds-t") == ["performance", "storage"]
        assert store.dataset_size("ds-t") == 3
        assert len(store.fetch_cluster("ds-t", "performance")) == 2
        assert store.fetch_cluster("ds-t", "ghost") == []
        store.drop_dataset("ds-t")
        assert store.dataset_size("ds-t") == 0

    def test_history_and_baselines(self, world):
        sim, _, _, store, _, _ = world
        records = [
            make_record(value=10.0, time=1.0),
            make_record(value=20.0, time=2.0),
            make_record(value=60.0, time=3.0),
        ]

        def proc():
            yield from store.store_records(records)

        sim.spawn(proc())
        sim.run(until=100)
        assert len(store.history("d1", "cpu_load")) == 3
        baseline = store.baseline("d1", "cpu_load")
        assert baseline["mean"] == pytest.approx(30.0)
        assert baseline["maximum"] == 60.0
        earlier = store.baseline("d1", "cpu_load", exclude_after=2.0)
        assert earlier["mean"] == pytest.approx(15.0)
        assert store.baseline("ghost", "cpu_load") is None

    def test_baselines_for_records_dedups_series(self, world):
        sim, _, _, store, _, _ = world

        def proc():
            yield from store.store_records([make_record(value=5.0)])

        sim.spawn(proc())
        sim.run(until=100)
        query_records = [make_record(value=1.0), make_record(value=2.0)]
        baselines = store.baselines_for_records(query_records)
        assert len(baselines) == 1

    def test_non_numeric_samples_not_indexed(self, world):
        sim, _, _, store, _, _ = world

        def proc():
            yield from store.store_records(
                [make_record(metric="proc_name", value="bash")])

        sim.spawn(proc())
        sim.run(until=100)
        assert store.history("d1", "proc_name") == []

    def test_dataset_id_generator_unique(self):
        assert new_dataset_id() != new_dataset_id()


class _Requester(Agent):
    """Scripted agent that queries the storage agent."""

    def __init__(self, name, storage_name, query):
        super().__init__(name)
        self.storage_name = storage_name
        self.query = query
        self.reply = None

    def setup(self):
        agent = self

        from repro.agents.behaviours import OneShotBehaviour

        class Ask(OneShotBehaviour):
            def action(self):
                agent.send(ACLMessage(
                    Performative.QUERY_REF, agent.name, agent.storage_name,
                    content=agent.query, conversation_id="q-1",
                    size_units=0.5,
                ))
                agent.reply = yield from self.receive(
                    MessageTemplate(conversation_id="q-1"), timeout=60.0)

        self.add_behaviour(Ask())


class TestStorageAgent:
    def _deploy(self, world, query, preload=(), history=()):
        sim, network, platform, store, storage_host, client_host = world
        storage_container = platform.create_container("sc", storage_host)
        client_container = platform.create_container("cc", client_host)
        storage_agent = StorageAgent("storage@stor", store)
        storage_container.deploy(storage_agent)

        def load():
            yield from store.store_records(list(history))
            yield from store.store_records(list(preload), dataset_id="ds-1")

        sim.spawn(load())
        sim.run(until=50)
        requester = _Requester("client-agent", "storage@stor", query)
        client_container.deploy(requester)
        sim.run(until=200)
        return requester, store

    def test_fetch_cluster_returns_records_and_baselines(self, world):
        requester, store = self._deploy(
            world,
            {"op": "fetch-cluster", "dataset": "ds-1",
             "cluster": "performance"},
            history=[make_record(value=42.0, time=1.0)],
            preload=[make_record(value=90.0, time=5.0)],
        )
        assert requester.reply is not None
        assert requester.reply.performative == Performative.INFORM
        records = requester.reply.content["records"]
        assert len(records) == 1
        # the baseline covers only history *before* the analyzed batch
        assert requester.reply.content["baselines"][0]["mean"] == 42.0
        assert store.fetches_served == 1

    def test_fetch_summary(self, world):
        requester, _ = self._deploy(
            world,
            {"op": "fetch-summary", "dataset": "ds-1"},
            preload=[make_record()],
        )
        content = requester.reply.content
        assert content["record_count"] == 1
        assert content["clusters"] == ["performance"]

    def test_unknown_op_not_understood(self, world):
        requester, _ = self._deploy(world, {"op": "divinate"})
        assert requester.reply.performative == Performative.NOT_UNDERSTOOD

    def test_store_batch_via_acl(self, world):
        sim, network, platform, store, storage_host, client_host = world
        storage_container = platform.create_container("sc", storage_host)
        client_container = platform.create_container("cc", client_host)
        storage_agent = StorageAgent("storage@stor", store)
        storage_container.deploy(storage_agent)

        class Sender(Agent):
            def setup(self):
                agent = self

                from repro.agents.behaviours import OneShotBehaviour

                class Send(OneShotBehaviour):
                    def action(self):
                        agent.send(ACLMessage(
                            Performative.REQUEST, agent.name, "storage@stor",
                            content={"op": "store-batch",
                                     "records": [make_record()],
                                     "dataset": "ds-x"},
                            conversation_id="s-1", size_units=1.5,
                        ))
                        agent.confirm = yield from self.receive(
                            MessageTemplate(conversation_id="s-1"),
                            timeout=60.0)

                self.add_behaviour(Send())

        sender = Sender("sender")
        client_container.deploy(sender)
        sim.run(until=200)
        assert sender.confirm.performative == Performative.CONFIRM
        assert sender.confirm.content["stored"] == 1
        assert store.dataset_size("ds-x") == 1
