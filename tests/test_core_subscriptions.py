"""Tests for SUBSCRIBE-based alert push from the interface grid."""

import pytest

from repro.agents.acl import ACLMessage, MessageTemplate, Performative
from repro.agents.agent import Agent
from repro.agents.behaviours import CyclicBehaviour
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.baselines.centralized import default_devices


class UserAgent(Agent):
    """A network manager's user agent subscribing to alerts."""

    def __init__(self, name, min_severity="major"):
        super().__init__(name)
        self.min_severity = min_severity
        self.alerts_received = []
        self.confirmations = []

    def setup(self):
        user = self

        class Listen(CyclicBehaviour):
            def step(self):
                message = yield from self.receive()
                if message is None:
                    return
                if message.ontology == "alert":
                    user.alerts_received.append(message.content)
                elif message.performative == Performative.CONFIRM:
                    user.confirmations.append(message.content)

        self.add_behaviour(Listen())
        self.send(ACLMessage(
            Performative.SUBSCRIBE,
            sender=self.name,
            receiver="interface",
            content={"min_severity": self.min_severity},
            ontology="alert-subscription",
        ))


@pytest.fixture
def system():
    spec = GridTopologySpec(
        devices=default_devices(2),
        collector_hosts=[HostSpec("col1")],
        analysis_hosts=[HostSpec("inf1")],
        storage_host=HostSpec("stor"),
        interface_host=HostSpec("iface"),
        seed=12,
        dataset_threshold=6,
    )
    return GridManagementSystem(spec)


def _user_on_new_host(system, name, min_severity="major"):
    host = system.network.add_host(name + "-host", "site1", role="user")
    container = system.platform.create_container(name + "-c", host)
    user = UserAgent(name, min_severity)
    container.deploy(user)
    return user


def test_subscription_confirmed(system):
    user = _user_on_new_host(system, "boss")
    system.run(until=5.0)
    assert user.confirmations == [{"subscribed": True}]
    assert system.interface.subscribers == {"boss": "major"}


def test_alerts_pushed_to_subscriber(system):
    user = _user_on_new_host(system, "boss")
    system.devices["dev1"].inject_fault("cpu_runaway")
    system.assign_goals(system.make_paper_goals(polls_per_type=2))
    assert system.run_until_records(6, timeout=2000)
    assert any(alert["kind"] == "high-cpu" for alert in user.alerts_received)
    assert all(alert["severity"] in ("major", "critical")
               for alert in user.alerts_received)


def test_severity_filter_respected(system):
    picky = _user_on_new_host(system, "picky", min_severity="critical")
    system.devices["dev1"].inject_fault("cpu_runaway")  # major severity
    system.assign_goals(system.make_paper_goals(polls_per_type=2))
    assert system.run_until_records(6, timeout=2000)
    # high-cpu is 'major': below the subscriber's 'critical' threshold
    assert all(alert["severity"] == "critical"
               for alert in picky.alerts_received)


def test_cancel_stops_pushes(system):
    user = _user_on_new_host(system, "boss")
    system.run(until=2.0)
    user.send(ACLMessage(
        Performative.SUBSCRIBE, sender=user.name, receiver="interface",
        content={"cancel": True}, ontology="alert-subscription",
    ))
    system.run(until=4.0)
    assert system.interface.subscribers == {}
    system.devices["dev1"].inject_fault("cpu_runaway")
    system.assign_goals(system.make_paper_goals(polls_per_type=2))
    assert system.run_until_records(6, timeout=2000)
    assert user.alerts_received == []


def test_multiple_subscribers_each_served(system):
    first = _user_on_new_host(system, "first")
    second = _user_on_new_host(system, "second")
    system.devices["dev1"].inject_fault("cpu_runaway")
    system.assign_goals(system.make_paper_goals(polls_per_type=2))
    assert system.run_until_records(6, timeout=2000)
    assert first.alerts_received
    assert first.alerts_received == second.alerts_received
