"""Smoke tests for the shared experiment runners (tiny workloads)."""

import pytest

from repro.evaluation.experiments import (
    crossover_experiment,
    loadbalance_ablation,
    run_all_architectures,
    run_scenario_on_grid,
    scalability_experiment,
    sensitivity_experiment,
)
from repro.workloads.scenarios import Scenario, crossover_scenarios
from repro.workloads.generator import RequestMix
from repro.core.system import DeviceSpec


def tiny_scenario(requests=1):
    return Scenario(
        "tiny",
        devices=[DeviceSpec("dev1", "server"), DeviceSpec("dev2", "router")],
        mix=RequestMix(requests, requests, requests),
    )


class TestRunners:
    def test_run_scenario_on_grid(self):
        result = run_scenario_on_grid(tiny_scenario(), seed=2)
        assert result.completed
        assert result.records_analyzed == 3
        assert result.label == "grid"

    def test_run_all_architectures_same_workload(self):
        results = run_all_architectures(tiny_scenario(2), seed=2)
        assert set(results) == {"centralized", "multiagent", "grid"}
        assert all(result.completed for result in results.values())
        assert len({result.records_analyzed
                    for result in results.values()}) == 1

    def test_crossover_rows_shape(self):
        rows = crossover_experiment(
            crossover_scenarios(points=(1, 2), device_count=2), seed=2)
        assert [row["requests_per_type"] for row in rows] == [1, 2]
        for row in rows:
            assert row["winner"] in ("centralized", "multiagent", "grid")
            assert set(row["makespans"]) == \
                {"centralized", "multiagent", "grid"}

    def test_loadbalance_rows(self):
        rows = loadbalance_ablation(
            tiny_scenario(2), ["round-robin", "capacity"], seed=2,
            analyzer_count=2, analyzer_capacities=(20.0, 5.0),
            dataset_threshold=2,
        )
        assert [row["policy"] for row in rows] == ["round-robin", "capacity"]
        assert all(row["completed"] for row in rows)

    def test_scalability_points(self):
        rows = scalability_experiment([
            {"device_count": 2, "requests_per_type": 1,
             "collector_count": 1, "analyzer_count": 1},
        ], seed=2)
        assert rows[0]["completed"]
        assert rows[0]["max_cpu_units"] > 0

    def test_sensitivity_orders(self):
        rows = sensitivity_experiment(tiny_scenario(2), factors=(1.0,),
                                      seed=2)
        assert rows[0]["factor"] == 1.0
        assert set(rows[0]["ordering"]) == \
            {"centralized", "multiagent", "grid"}
