"""Tests for golden-result regression checking, including the live
Figure 6 golden file shipped under benchmarks/golden/."""

import os

import pytest

from repro.evaluation.regression import (
    GoldenResult,
    RegressionReport,
    figure6_metrics,
)

GOLDEN_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "golden")


class TestGoldenResult:
    def test_exact_match_ok(self):
        golden = GoldenResult("x", {"a": 1.0, "b": "host1", "c": True})
        report = golden.check({"a": 1.0, "b": "host1", "c": True})
        assert report.ok
        assert "OK" in report.describe()

    def test_within_tolerance_ok(self):
        golden = GoldenResult("x", {"a": 100.0})
        assert golden.check({"a": 104.0}, rel_tol=0.05).ok
        assert not golden.check({"a": 110.0}, rel_tol=0.05).ok

    def test_string_metrics_must_match_exactly(self):
        golden = GoldenResult("x", {"host": "manager"})
        assert not golden.check({"host": "other"}).ok

    def test_bool_not_treated_as_number(self):
        golden = GoldenResult("x", {"flag": True})
        report = golden.check({"flag": False}, rel_tol=10.0)
        assert not report.ok

    def test_missing_and_unexpected_keys(self):
        golden = GoldenResult("x", {"a": 1.0})
        report = golden.check({"b": 2.0})
        assert not report.ok
        assert report.missing == ["a"]
        assert report.unexpected == ["b"]

    def test_near_zero_uses_abs_tol(self):
        golden = GoldenResult("x", {"a": 0.0})
        assert golden.check({"a": 1e-12}).ok
        assert not golden.check({"a": 0.5}).ok

    def test_save_load_round_trip(self, tmp_path):
        golden = GoldenResult("x", {"a": 1.5, "b": "h"})
        path = str(tmp_path / "g.json")
        golden.save(path)
        loaded = GoldenResult.load(path)
        assert loaded.name == "x"
        assert loaded.metrics == golden.metrics

    def test_non_serializable_metric_rejected(self):
        with pytest.raises(TypeError):
            GoldenResult("x", {"a": object()})

    def test_describe_lists_failures(self):
        golden = GoldenResult("x", {"a": 100.0})
        text = golden.check({"a": 200.0}).describe()
        assert "FAILED" in text
        assert "rel err" in text


class TestFigure6Golden:
    """The shipped golden file must keep matching fresh runs."""

    def test_fresh_run_matches_shipped_golden(self):
        from repro.baselines.driver import run_figure6

        golden = GoldenResult.load(
            os.path.join(GOLDEN_DIR, "figure6.json"))
        results = run_figure6(polls_per_type=10, seed=42)
        report = golden.check(figure6_metrics(results), rel_tol=0.05)
        assert report.ok, report.describe()

    def test_golden_encodes_the_papers_ordering(self):
        golden = GoldenResult.load(
            os.path.join(GOLDEN_DIR, "figure6.json"))
        metrics = golden.metrics
        assert metrics["grid_max_cpu_units"] < \
            metrics["multiagent_max_cpu_units"] < \
            metrics["centralized_max_cpu_units"]
        assert metrics["grid_makespan"] < \
            metrics["multiagent_makespan"] < \
            metrics["centralized_makespan"]
