"""Tests for the multi-site federation layer (integrated vs siloed)."""

import pytest

from repro.core.federation import (
    INTEGRATED,
    SILOED,
    FederatedManagementSystem,
    FederatedTopologySpec,
    SiteSpec,
)
from repro.rules.conditions import GT, Pattern, Var
from repro.rules.engine import Rule


def two_site_spec(mode, seed=5, **overrides):
    parameters = dict(
        sites=[
            SiteSpec.simple("site1", device_count=2, analyzer_count=1),
            SiteSpec.simple("site2", device_count=2, analyzer_count=1),
        ],
        mode=mode,
        seed=seed,
        dataset_threshold=6,
    )
    parameters.update(overrides)
    return FederatedTopologySpec(**parameters)


def run_federated(system, polls_per_type=4, timeout=3000):
    system.assign_site_goals(system.make_site_goals(
        polls_per_type=polls_per_type))
    total = len(system.sites) * polls_per_type * 3
    completed = system.run_until_records(total, timeout=timeout)
    system.stop_devices()
    return completed


class TestConstruction:
    def test_integrated_has_single_root_and_interface(self):
        system = FederatedManagementSystem(two_site_spec(INTEGRATED))
        assert system.global_root is not None
        assert system.global_interface is not None
        assert len(system.interfaces()) == 1
        assert all(runtime.root is None for runtime in system.sites.values())

    def test_siloed_has_per_site_roots(self):
        system = FederatedManagementSystem(two_site_spec(SILOED))
        assert system.global_root is None
        assert len(system.interfaces()) == 2
        assert all(runtime.root is not None
                   for runtime in system.sites.values())

    def test_devices_spread_over_sites(self):
        system = FederatedManagementSystem(two_site_spec(INTEGRATED))
        assert len(system.devices) == 4
        sites = {device.host.site.name for device in system.devices.values()}
        assert sites == {"site1", "site2"}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FederatedTopologySpec(sites=[], mode=INTEGRATED)
        with pytest.raises(ValueError):
            FederatedTopologySpec(
                sites=[SiteSpec.simple("s")], mode="anarchic")
        with pytest.raises(ValueError):
            SiteSpec("empty", devices=[])


class TestWorkloadCompletion:
    @pytest.mark.parametrize("mode", [INTEGRATED, SILOED])
    def test_both_modes_complete_workload(self, mode):
        system = FederatedManagementSystem(two_site_spec(mode))
        assert run_federated(system)
        assert system.records_analyzed() == 24

    def test_integrated_analyzers_registered_across_sites(self):
        system = FederatedManagementSystem(two_site_spec(INTEGRATED))
        system.sim.run(until=5.0)
        assert len(system.global_root.analyzer_containers()) == 2

    def test_siloed_roots_see_only_local_analyzers(self):
        system = FederatedManagementSystem(two_site_spec(SILOED))
        system.sim.run(until=5.0)
        for runtime in system.sites.values():
            assert len(runtime.root.analyzer_containers()) == 1


class TestCrossSiteCorrelation:
    """The paper's key claim: only the integrated grid can correlate
    information across sites."""

    def _overload_both_sites(self, system):
        system.devices["site1-dev1"].inject_fault("cpu_runaway")
        system.devices["site2-dev1"].inject_fault("cpu_runaway")

    def test_integrated_detects_multi_site_incident(self):
        system = FederatedManagementSystem(two_site_spec(INTEGRATED))
        self._overload_both_sites(system)
        assert run_federated(system)
        kinds = {finding.kind for finding in system.all_findings()}
        assert "multi-site-overload" in kinds

    def test_siloed_cannot_see_across_sites(self):
        system = FederatedManagementSystem(two_site_spec(SILOED))
        self._overload_both_sites(system)
        assert run_federated(system)
        kinds = {finding.kind for finding in system.all_findings()}
        # each silo sees its local high-cpu...
        assert "high-cpu" in kinds
        # ...but the cross-site incident is structurally invisible
        assert "multi-site-overload" not in kinds

    def test_integrated_without_window_misses_it_too(self):
        # ablation: integration needs the cross-dataset window, not just a
        # shared root
        system = FederatedManagementSystem(
            two_site_spec(INTEGRATED, cross_window=0.0))
        self._overload_both_sites(system)
        assert run_federated(system)
        kinds = {finding.kind for finding in system.all_findings()}
        assert "multi-site-overload" not in kinds


class TestSharedKnowledge:
    def _eager_rule(self):
        return Rule(
            "always-problem",
            [Pattern("sample", bind="sample", metric="cpu_load",
                     value=GT(-1), device=Var("device"), site=Var("site"))],
            lambda context: context.assert_fact(
                "problem", kind="eager", severity="warning",
                device=context["device"], site=context["site"],
                value=None, metric="cpu_load"),
            group="performance", level=1,
        )

    def test_integrated_shares_to_all_sites(self):
        system = FederatedManagementSystem(two_site_spec(INTEGRATED))
        system.share_knowledge(self._eager_rule())
        assert run_federated(system)
        sites_with_eager = {
            finding.site for finding in system.all_findings()
            if finding.kind == "eager"
        }
        assert sites_with_eager == {"site1", "site2"}

    def test_siloed_knowledge_stays_local(self):
        system = FederatedManagementSystem(two_site_spec(SILOED))
        system.share_knowledge(self._eager_rule())
        assert run_federated(system)
        sites_with_eager = {
            finding.site for finding in system.all_findings()
            if finding.kind == "eager"
        }
        assert sites_with_eager == {"site1"}


class TestWanTolerance:
    def test_high_wan_latency_degrades_gracefully(self):
        from repro.network.topology import LinkSpec

        fast = FederatedManagementSystem(two_site_spec(
            INTEGRATED, wan=LinkSpec(latency=0.01, bandwidth=1000.0)))
        assert run_federated(fast)
        fast_records = fast.records_analyzed()

        slow = FederatedManagementSystem(two_site_spec(
            INTEGRATED, wan=LinkSpec(latency=2.0, bandwidth=100.0)))
        assert run_federated(slow)
        # same work completes despite 200x the WAN latency ("agents are
        # tolerable to the latency"); only the clock suffers
        assert slow.records_analyzed() == fast_records
        assert slow.sim.now >= fast.sim.now
