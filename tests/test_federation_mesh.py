"""Partition-tolerant federation mesh: links, degradation, failover.

The mesh promises four things on top of the siloed baseline, each pinned
here:

* **link-state machine** -- gateways heartbeat each other and walk
  up -> suspect -> partitioned -> healing -> up; a partition is declared
  within the heartbeat timeout and probed at a capped backoff.
* **explicit degradation** -- a partitioned peer's devices go offline at
  every other site's interface, a major ``site-partition`` finding (and
  alert) fires, and an info ``site-partition-heal`` finding clears it.
* **failover** -- a saturated site forwards surplus analysis jobs to the
  idlest reachable peer; every forwarded job completes exactly once even
  under redelivery.
* **opt-in** -- with ``federation_reliability``/mesh knobs at their
  defaults, integrated/siloed builds are byte-identical run to run
  (hypothesis double-run diffs).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.federation import (
    INTEGRATED,
    LINK_PARTITIONED,
    LINK_UP,
    MESH,
    SILOED,
    FederatedManagementSystem,
    FederatedTopologySpec,
    SiteSpec,
)
from repro.workloads.faults import (
    FaultEvent,
    FaultPlan,
    apply_fault_plan,
    site_partition_plan,
)

HEARTBEAT = 1.0
TIMEOUT = 4.0 * HEARTBEAT


def mesh_spec(site_count=2, seed=7, **overrides):
    parameters = dict(
        sites=[
            SiteSpec.simple("site%d" % (index + 1), device_count=2,
                            analyzer_count=1)
            for index in range(site_count)
        ],
        mode=MESH,
        seed=seed,
        dataset_threshold=6,
        federation_reliability=True,
        heartbeat_interval=HEARTBEAT,
    )
    parameters.update(overrides)
    return FederatedTopologySpec(**parameters)


def run_workload(system, polls_per_type=4, timeout=3000):
    system.assign_site_goals(system.make_site_goals(
        polls_per_type=polls_per_type))
    total = len(system.sites) * polls_per_type * 3
    completed = system.run_until_records(total, timeout=timeout)
    system.stop_devices()
    return completed


def partitioned_mesh(site_count=4, partition_at=15.0, heal_after=25.0,
                     **overrides):
    """A mesh with the last site severed mid-run, workload already wired."""
    system = FederatedManagementSystem(mesh_spec(site_count, **overrides))
    apply_fault_plan(system, site_partition_plan(
        "site%d" % site_count, partition_at=partition_at,
        heal_after=heal_after))
    system.assign_site_goals(system.make_site_goals(polls_per_type=4))
    return system


class TestConstruction:
    def test_mesh_builds_gateway_per_site(self):
        system = FederatedManagementSystem(mesh_spec(3))
        assert len(system.gateways()) == 3
        for runtime in system.sites.values():
            gateway = runtime.gateway
            assert gateway is not None
            # overflow drains through the gateway, never a peer root
            assert runtime.root.forwarder == gateway.try_forward
            assert runtime.root.forward_threshold == \
                system.spec.forward_threshold
            assert set(gateway.peer_gateways) == \
                set(system.sites) - {runtime.name}

    def test_mesh_defaults_derive_from_heartbeat(self):
        spec = mesh_spec(2, heartbeat_interval=0.5)
        assert spec.heartbeat_timeout == 2.0
        assert spec.reconnect_max_backoff == 4.0

    def test_mesh_requires_two_sites(self):
        with pytest.raises(ValueError):
            FederatedTopologySpec(sites=[SiteSpec.simple("s1")], mode=MESH)

    def test_spec_knob_validation(self):
        for overrides in (
            dict(heartbeat_interval=0.0),
            dict(heartbeat_timeout=-1.0),
            dict(forwarding_budget=0),
            dict(forward_threshold=0),
            dict(reconnect_max_backoff=HEARTBEAT / 2.0),
        ):
            with pytest.raises(ValueError):
                mesh_spec(2, **overrides)

    def test_siloed_build_has_no_mesh_machinery(self):
        system = FederatedManagementSystem(
            mesh_spec(2, mode=SILOED, federation_reliability=False,
                      heartbeat_interval=None))
        assert system.gateways() == []
        assert system.link_state_report() == {}
        assert system.reliable_channel is None


class TestLinkStateMachine:
    def test_healthy_mesh_stays_up(self):
        system = FederatedManagementSystem(mesh_spec(3))
        system.sim.run(until=20.0)
        for states in system.link_state_report().values():
            assert set(states.values()) == {LINK_UP}
        report = system.forwarding_report()
        assert report["beacons_sent"] > 0
        assert report["beacons_received"] > 0
        assert report["partitions_declared"] == 0

    def test_partition_detected_within_timeout(self):
        system = partitioned_mesh(site_count=4, partition_at=15.0,
                                  heal_after=200.0)
        system.sim.run(until=15.0 + TIMEOUT * 1.25)
        for site_name, runtime in system.sites.items():
            if site_name == "site4":
                continue
            gateway = runtime.gateway
            assert gateway.link_state["site4"] == LINK_PARTITIONED
            [(peer, declared_at)] = gateway.partitions
            assert peer == "site4"
            assert declared_at <= 15.0 + TIMEOUT * 1.25
        # the severed site sees the rest of the world go dark too
        severed = system.sites["site4"].gateway
        assert set(severed.link_state.values()) == {LINK_PARTITIONED}

    def test_probe_backoff_is_capped(self):
        system = partitioned_mesh(site_count=2, partition_at=5.0,
                                  heal_after=300.0)
        system.sim.run(until=100.0)
        gateway = system.sites["site1"].gateway
        assert gateway.probes_sent > 0
        assert gateway._probe_interval["site2"] <= \
            system.spec.reconnect_max_backoff

    def test_heal_reconverges_both_sides(self):
        system = partitioned_mesh(site_count=2, partition_at=10.0,
                                  heal_after=20.0)
        system.sim.run(until=60.0)
        for runtime in system.sites.values():
            gateway = runtime.gateway
            assert set(gateway.link_state.values()) == {LINK_UP}
            assert len(gateway.partitions) == 1
            assert len(gateway.heals) == 1
            (_, healed_at) = gateway.heals[0]
            assert healed_at >= 30.0  # not before the network healed


class TestDegradation:
    def _run_split(self, until):
        system = partitioned_mesh(site_count=4, partition_at=15.0,
                                  heal_after=25.0)
        system.sim.run(until=until)
        return system

    def test_peer_devices_reported_offline(self):
        system = self._run_split(until=25.0)
        interface = system.sites["site1"].interface
        assert interface.partitioned_sites() == ["site4"]
        assert interface.offline_devices() == ["site4-dev1", "site4-dev2"]
        assert interface.device_status("site4-dev1") == "offline"
        # local and other-peer devices are untouched
        assert interface.device_status("site1-dev1") == "online"
        assert interface.device_status("site2-dev1") == "online"

    def test_partition_finding_is_major_and_alerts(self):
        system = self._run_split(until=25.0)
        interface = system.sites["site1"].interface
        partition_findings = [
            finding for finding in interface.all_findings()
            if finding.kind == "site-partition"
        ]
        assert partition_findings
        finding = partition_findings[0]
        assert finding.severity == "major"
        assert finding.site == "site4"
        assert finding.detail["devices"] == ["site4-dev1", "site4-dev2"]
        # major >= the interface's default alert threshold
        assert any(alert.finding.kind == "site-partition"
                   for alert in interface.alerts)
        # and the on-screen finding is flagged stale while the site is cut
        assert finding in interface.stale_findings()

    def test_heal_emits_clearing_finding(self):
        system = self._run_split(until=80.0)
        interface = system.sites["site1"].interface
        kinds = [finding.kind for finding in interface.all_findings()]
        assert "site-partition" in kinds
        assert "site-partition-heal" in kinds
        assert interface.partitioned_sites() == []
        assert interface.offline_devices() == []
        assert interface.stale_findings() == []


class TestForwarding:
    def _saturated_mesh(self, seed=7):
        """Site1 gets triple workload so its single analyzer saturates."""
        system = FederatedManagementSystem(
            mesh_spec(2, seed=seed, forward_threshold=1))
        goals = system.make_site_goals(polls_per_type=6)
        goals["site1"] = goals["site1"] * 3
        system.assign_site_goals(goals)
        return system

    def test_saturated_site_forwards_exactly_once(self):
        system = self._saturated_mesh()
        system.sim.run(until=300.0)
        report = system.forwarding_report()
        assert report["jobs_forwarded"] > 0
        # exactly-once, globally balanced accounting:
        assert report["jobs_accepted"] == report["results_returned"]
        assert report["results_delivered"] == (
            report["jobs_forwarded"] - report["forwards_expired"])
        assert report["duplicate_results"] == 0
        assert report["jobs_rejected"] == 0
        # the origin root completed every dataset it opened
        root = system.sites["site1"].root
        assert root.jobs_forwarded > 0
        assert all(state.finished for state in root.datasets.values())

    def test_forwarded_job_capped_at_one_hop(self):
        from repro.agents.acl import ACLMessage, Performative
        from repro.agents.ontology import FORWARDED_JOB

        system = FederatedManagementSystem(mesh_spec(2))
        system.sim.run(until=3.0)  # analyzers registered
        gateway = system.sites["site1"].gateway
        relayed = ACLMessage(
            Performative.REQUEST, sender="gateway@site2",
            receiver=gateway.name,
            content=FORWARDED_JOB.make(
                job={"job_id": "j-hop"}, origin_site="site2",
                origin_gateway="gateway@site2", forward_hops=2,
            ),
            ontology=FORWARDED_JOB.name,
        )
        gateway._on_forwarded_job(relayed)
        assert gateway.jobs_rejected == 1
        assert "j-hop" not in gateway._remote_jobs

    def test_redelivered_forward_deduplicates(self):
        from repro.agents.acl import ACLMessage, Performative
        from repro.agents.ontology import FORWARDED_JOB

        system = FederatedManagementSystem(mesh_spec(2))
        system.sim.run(until=3.0)
        gateway = system.sites["site1"].gateway
        job = {
            "job_id": "j-dup", "dataset": "d1", "cluster": "performance",
            "record_count": 1, "level": 1,
            "storage_host": "site2-storage", "problems": [],
        }
        message = ACLMessage(
            Performative.REQUEST, sender="gateway@site2",
            receiver=gateway.name,
            content=FORWARDED_JOB.make(
                job=job, origin_site="site2",
                origin_gateway="gateway@site2", forward_hops=1,
            ),
            ontology=FORWARDED_JOB.name,
        )
        gateway._on_forwarded_job(message)
        gateway._on_forwarded_job(message)  # redelivered duplicate
        assert gateway.jobs_accepted == 1

    def test_no_forwarding_to_partitioned_peer(self):
        system = FederatedManagementSystem(
            mesh_spec(2, forward_threshold=1))
        goals = system.make_site_goals(polls_per_type=6)
        goals["site1"] = goals["site1"] * 3
        system.assign_site_goals(goals)
        system.sim.run(until=10.0)
        system.network.partition_site("site2")
        system.sim.run(until=10.0 + TIMEOUT * 1.25)
        gateway = system.sites["site1"].gateway
        assert gateway.link_state["site2"] == LINK_PARTITIONED
        forwarded_before = gateway.jobs_forwarded
        system.sim.run(until=60.0)
        # saturation persists, but the severed peer is never a candidate
        assert gateway.jobs_forwarded == forwarded_before


class TestTraceContinuity:
    def test_cross_site_chains_audit_complete(self):
        system = FederatedManagementSystem(
            mesh_spec(2, telemetry=True, forward_threshold=1))
        goals = system.make_site_goals(polls_per_type=6)
        goals["site1"] = goals["site1"] * 3
        system.assign_site_goals(goals)
        system.sim.run(until=300.0)
        recorder = system.telemetry.recorder
        assert recorder.orphan_spans() == []
        forwards = recorder.find(name="forward")
        assert forwards  # the saturation really crossed the boundary
        for span in forwards:
            assert span.status == "ok"
            # forwarded away from the forwarding gateway's own site
            assert span.detail["peer"] != span.agent.split("@", 1)[1]
            # the remote analyzer's span hangs off the forward span
            children = [
                s for s in recorder.find(name="analyze")
                if s.parent_id == span.span_id
            ]
            assert children
        pipeline = system.telemetry.pipeline_report()
        assert pipeline["orphans"] == []
        assert pipeline["incomplete"] == []


class TestMeshUnderPartitionCompletes:
    def test_workload_heal_complete_after_partition(self):
        """The acceptance drill: partition mid-run, heal, drain to 100%."""
        system = partitioned_mesh(site_count=4, partition_at=15.0,
                                  heal_after=25.0)
        total = 4 * 4 * 3
        assert system.run_until_records(total, timeout=3000)
        assert system.records_classified() == system.records_shipped()
        assert not system.reliable_channel.permanently_dead()
        report = system.forwarding_report()
        assert report["partitions_declared"] == 6  # 3 peers x both sides
        assert report["heals_declared"] == 6
        assert report["duplicate_results"] == 0


class TestByteIdentity:
    """``federation_reliability=False`` keeps the historical build: two
    fresh runs of the same spec are digest-identical, mesh knobs unused."""

    @staticmethod
    def _digest(mode, seed):
        system = FederatedManagementSystem(FederatedTopologySpec(
            sites=[
                SiteSpec.simple("site1", device_count=2),
                SiteSpec.simple("site2", device_count=2),
            ],
            mode=mode, seed=seed, dataset_threshold=6,
        ))
        run_workload(system, polls_per_type=3)
        findings = sorted(
            (f.kind, f.severity, f.device, f.site)
            for f in system.all_findings()
        )
        return (system.records_analyzed(), system.sim.now, findings)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           mode=st.sampled_from([INTEGRATED, SILOED]))
    @settings(max_examples=6, deadline=None)
    def test_reliability_off_double_run_identical(self, seed, mode):
        assert self._digest(mode, seed) == self._digest(mode, seed)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=3, deadline=None)
    def test_mesh_runs_are_deterministic_too(self, seed):
        def digest():
            system = FederatedManagementSystem(mesh_spec(2, seed=seed))
            run_workload(system, polls_per_type=3)
            return (system.records_analyzed(), system.sim.now,
                    system.forwarding_report())

        assert digest() == digest()
