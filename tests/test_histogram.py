"""LatencyHistogram contracts: error bound, merge exactness, bounded state.

The health layer's whole pitch rests on three properties pinned here:

* any reported quantile is within 1% (relative) of the exact percentile
  of the recorded values -- the ``sqrt(growth) - 1`` bucket bound;
* merging is exact and order-independent (integer counter addition), so
  per-shard / per-site histograms aggregate without error inflation;
* memory stays bounded by the value *range*, not the value *count*.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.histogram import LatencyHistogram

#: The contract: growth=1.015 bounds relative error at sqrt(1.015)-1.
ERROR_BOUND = 0.01

latencies = st.lists(
    st.floats(min_value=1e-6, max_value=1e5, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=200,
)


def exact_nearest_rank(values, q):
    """Nearest-rank percentile over the raw values (the reference)."""
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    if q == 100:
        return ordered[-1]
    rank = int(math.ceil(q / 100.0 * len(ordered)))
    return ordered[max(0, rank - 1)]


class TestQuantileError:
    @given(latencies)
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_one_percent(self, values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        for q in (1, 10, 25, 50, 75, 90, 95, 99):
            reported = histogram.quantile(q)
            exact = exact_nearest_rank(values, q)
            assert reported is not None
            # Relative error against the exact nearest-rank percentile.
            tolerance = ERROR_BOUND * max(abs(exact), 1e-12)
            assert abs(reported - exact) <= tolerance, (
                "q=%s reported=%r exact=%r" % (q, reported, exact))

    @given(latencies)
    @settings(max_examples=100, deadline=None)
    def test_edges_are_exact(self, values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        assert histogram.quantile(0) == min(values)
        assert histogram.quantile(100) == max(values)
        assert histogram.min == min(values)
        assert histogram.max == max(values)
        assert histogram.mean == pytest.approx(
            sum(values) / len(values))

    def test_random_workload_sweep(self):
        """A denser deterministic sweep than hypothesis explores: mixed
        log-uniform workloads at realistic sizes."""
        rng = random.Random(7)
        for _ in range(20):
            values = [10 ** rng.uniform(-4, 4) for _ in range(2000)]
            histogram = LatencyHistogram()
            for value in values:
                histogram.record(value)
            for q in (50, 90, 95, 99, 99.9):
                reported = histogram.quantile(q)
                exact = exact_nearest_rank(values, q)
                assert abs(reported - exact) <= ERROR_BOUND * exact


class TestMerge:
    @given(latencies, latencies, latencies)
    @settings(max_examples=100, deadline=None)
    def test_merge_associative_and_exact(self, a, b, c):
        def build(values):
            histogram = LatencyHistogram()
            for value in values:
                histogram.record(value)
            return histogram

        # (a + b) + c
        left = build(a).merge(build(b)).merge(build(c))
        # a + (b + c)
        right = build(a).merge(build(b).merge(build(c)))
        # one histogram fed everything (the ground truth)
        combined = build(a + b + c)
        # Bucket counts, extremes and cardinality merge exactly in any
        # order; only the float running ``total`` (hence the mean) is
        # subject to summation order, like any float accumulator.
        for result in (left, right):
            state, reference = result.to_dict(), combined.to_dict()
            total = state.pop("total")
            assert total == pytest.approx(reference.pop("total"))
            assert state == reference
        for q in (0, 50, 95, 100):
            assert left.quantile(q) == right.quantile(q) == \
                combined.quantile(q)

    def test_merge_rejects_mismatched_growth(self):
        coarse = LatencyHistogram(growth=1.1)
        fine = LatencyHistogram(growth=1.015)
        with pytest.raises(ValueError):
            fine.merge(coarse)

    def test_merge_rejects_non_histogram(self):
        with pytest.raises(TypeError):
            LatencyHistogram().merge([1, 2, 3])


class TestStateAndSerialisation:
    def test_bounded_memory(self):
        """13 decades of dynamic range stay within ~2100 sparse buckets,
        no matter how many values are recorded."""
        histogram = LatencyHistogram()
        rng = random.Random(3)
        for _ in range(50_000):
            histogram.record(10 ** rng.uniform(-6, 7))
        assert histogram.count == 50_000
        assert len(histogram._buckets) <= \
            math.log(10 ** 13) / math.log(histogram.growth) + 2

    def test_round_trip(self):
        histogram = LatencyHistogram()
        for value in (0.0, 0.001, 1.0, 250.0):
            histogram.record(value)
        clone = LatencyHistogram.from_dict(histogram.to_dict())
        assert clone.to_dict() == histogram.to_dict()
        for q in (0, 50, 99, 100):
            assert clone.quantile(q) == histogram.quantile(q)

    def test_zero_and_validation(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        histogram.record(0.0)
        histogram.record(5.0)
        assert histogram.quantile(50) == 0.0
        assert histogram.quantile(100) == 5.0
        with pytest.raises(ValueError):
            histogram.record(-1.0)
        with pytest.raises(ValueError):
            histogram.quantile(101)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(50) is None
        assert histogram.mean is None
        assert len(histogram) == 0
        assert histogram.summary()["count"] == 0

    def test_summary_keys(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)
        summary = histogram.summary(qs=(50, 99.9))
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p99.9"}
