"""End-to-end invariants over a full grid run.

These tests run one deployment and then cross-check global bookkeeping:
message conservation, cost-ledger consistency with Table 1, trace
coverage, and platform statistics.  They are the guards that keep the
subsystems honest with each other.
"""

import pytest

from repro.core.costs import TaskKind
from repro.core.system import GridManagementSystem, GridTopologySpec
from repro.simkernel.resources import ResourceKind
from repro.simkernel.trace import SimulationTracer, trace_transport


@pytest.fixture(scope="module")
def run():
    """One traced paper-scenario run shared by every test in the module."""
    spec = GridTopologySpec.paper_figure6c(seed=33, dataset_threshold=30)
    system = GridManagementSystem(spec)
    tracer = SimulationTracer(system.sim, capacity=100000)
    # messages already delivered during construction (analyzer
    # registrations) predate the trace hook and stay untraced
    pre_attach_deliveries = system.transport.messages_delivered
    trace_transport(system.transport, tracer)
    system.assign_goals(system.make_paper_goals(polls_per_type=10))
    completed = system.run_until_records(30, timeout=4000)
    system.stop_devices()
    return system, tracer, completed, pre_attach_deliveries


class TestPipelineInvariants:
    def test_run_completed(self, run):
        system, tracer, completed, pre_attach = run
        assert completed

    def test_every_poll_became_a_stored_record(self, run):
        system, tracer, completed, pre_attach = run
        polls = sum(c.polls_completed for c in system.collectors)
        shipped = sum(c.records_shipped for c in system.collectors)
        assert polls == shipped == 30
        assert system.classifier.records_classified == 30
        assert system.store.records_stored == 30

    def test_every_stored_record_was_analyzed_once(self, run):
        system, tracer, completed, pre_attach = run
        analyzed = sum(a.records_analyzed for a in system.analyzers)
        assert analyzed == 30
        reported = sum(r.records_analyzed for r in system.interface.reports)
        assert reported == 30

    def test_request_cpu_matches_table1(self, run):
        system, tracer, completed, pre_attach = run
        request_cpu = sum(
            c.host.cpu.units_by_label.get(TaskKind.REQUEST, 0.0)
            for c in system.collectors
        )
        # 30 polls x Request cpu 10 (all types cost the same here)
        assert request_cpu == pytest.approx(300.0)

    def test_parse_cpu_matches_table1(self, run):
        system, tracer, completed, pre_attach = run
        parse_cpu = sum(
            c.host.cpu.units_by_label.get(TaskKind.PARSE, 0.0)
            for c in system.collectors
        )
        assert parse_cpu == pytest.approx(30 * 15.0)

    def test_store_costs_land_on_storage_host(self, run):
        system, tracer, completed, pre_attach = run
        storage_host = system.store.host
        store_cost = system.cost_model.store_cost()
        assert storage_host.cpu.units_by_label["store"] == \
            pytest.approx(30 * store_cost.cpu)
        assert storage_host.disk.units_by_label["store"] == \
            pytest.approx(30 * store_cost.disk)

    def test_inference_cpu_matches_table1(self, run):
        system, tracer, completed, pre_attach = run
        infer_cpu = sum(
            a.host.cpu.units_by_label.get(TaskKind.INFER, 0.0)
            for a in system.analyzers
        )
        cross_cpu = sum(
            a.host.cpu.units_by_label.get(TaskKind.INFER_CROSS, 0.0)
            for a in system.analyzers
        )
        assert infer_cpu == pytest.approx(30 * 20.0)
        assert cross_cpu == pytest.approx(40.0)  # one dataset, one cross

    def test_message_conservation(self, run):
        system, tracer, completed, pre_attach = run
        stats = system.transport.stats()
        # sent = delivered + dropped + (a handful still in flight when the
        # driver stopped the clock)
        in_flight = stats["sent"] - stats["delivered"] - stats["dropped"]
        assert 0 <= in_flight <= 5
        assert stats["dropped"] == 0
        traced = len(tracer.entries(kind="message"))
        assert traced == stats["delivered"] - pre_attach

    def test_snmp_traffic_dominates_wire_protocols(self, run):
        system, tracer, completed, pre_attach = run
        by_protocol = {}
        for entry in tracer.entries(kind="message"):
            by_protocol.setdefault(entry.detail["protocol"], 0)
            by_protocol[entry.detail["protocol"]] += 1
        # 30 polls = 30 requests + 30 responses
        assert by_protocol["snmp"] == 60
        assert "acl" in by_protocol

    def test_platform_routed_everything_it_accepted(self, run):
        system, tracer, completed, pre_attach = run
        stats = system.platform.stats()
        assert stats["failed"] == 0
        assert stats["routed"] > 0

    def test_nic_ledgers_match_wire_traffic(self, run):
        system, tracer, completed, pre_attach = run
        # every unit the transport carried was charged at two NICs
        total_nic = sum(
            host.nic.total_units for host in system.network.hosts.values()
        )
        assert total_nic == pytest.approx(
            2 * system.transport.units_carried)

    def test_report_totals_equal_host_ledgers(self, run):
        system, tracer, completed, pre_attach = run
        report = system.utilization_report()
        ledger_cpu = sum(
            host.cpu.total_units for host in system.management_hosts()
        )
        assert report.total_units(ResourceKind.CPU) == pytest.approx(
            ledger_cpu)
