"""Tests for lossy links and the collector's SNMP retries."""

import pytest

from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.network.addressing import Address
from repro.network.topology import LinkSpec, Network
from repro.network.transport import DeliveryError, Message, Transport
from repro.simkernel.simulator import Simulator


class TestLossyLinks:
    def test_loss_rate_validated(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=1, loss_rate=1.0)
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=1, loss_rate=-0.1)
        assert LinkSpec(latency=0, bandwidth=1, loss_rate=0.5).loss_rate == 0.5

    def _run_messages(self, loss_rate, count, seed=9):
        sim = Simulator(seed=seed)
        network = Network(
            sim, wan=LinkSpec(latency=0.01, bandwidth=1000.0,
                              loss_rate=loss_rate))
        network.add_host("a", "site1")
        receiver = network.add_host("b", "site2")
        received = []
        receiver.bind("in", received.append)
        transport = Transport(network)
        outcomes = []
        for _ in range(count):
            transport.send(Message(
                Address("a", "x"), Address("b", "in"), None, 1.0,
            )).add_waiter(outcomes.append)
        sim.run(until=1000)
        return received, outcomes, transport

    def test_zero_loss_delivers_everything(self):
        received, outcomes, transport = self._run_messages(0.0, 50)
        assert len(received) == 50
        assert transport.messages_dropped == 0

    def test_half_loss_drops_roughly_half(self):
        received, outcomes, transport = self._run_messages(0.5, 200)
        assert 60 <= len(received) <= 140  # loose statistical bound
        assert transport.messages_dropped == 200 - len(received)
        drops = [o for o in outcomes if isinstance(o, DeliveryError)]
        assert all("lost in transit" in str(error) for error in drops)

    def test_loss_is_seed_deterministic(self):
        first, _, _ = self._run_messages(0.3, 100, seed=5)
        second, _, _ = self._run_messages(0.3, 100, seed=5)
        assert len(first) == len(second)


class TestOutcomeSurfaces:
    """send_and_wait / send_batch failure reporting under lossy links."""

    def _net(self, loss_rate, seed=11):
        sim = Simulator(seed=seed)
        network = Network(sim, wan=LinkSpec(
            latency=0.01, bandwidth=1000.0, loss_rate=loss_rate))
        network.add_host("a", "site1")
        receiver = network.add_host("b", "site2")
        receiver.bind("in", lambda message: None)
        return sim, network, Transport(network)

    def _msg(self, port="in"):
        return Message(Address("a", "x"), Address("b", port), None, 1.0)

    def test_send_and_wait_raises_lost_in_transit(self):
        sim, _, transport = self._net(loss_rate=0.999)
        errors = []

        def proc():
            try:
                yield from transport.send_and_wait(self._msg())
            except DeliveryError as error:
                errors.append(error)

        sim.spawn(proc())
        sim.run(until=10)
        assert len(errors) == 1
        assert "lost in transit" in str(errors[0])
        assert errors[0].message is not None

    def test_send_and_wait_raises_destination_down(self):
        sim, network, transport = self._net(loss_rate=0.0)
        network.hosts["b"].fail()
        errors = []

        def proc():
            try:
                yield from transport.send_and_wait(self._msg())
            except DeliveryError as error:
                errors.append(error)

        sim.spawn(proc())
        sim.run(until=10)
        assert len(errors) == 1
        assert "destination host down" in str(errors[0])

    def test_send_and_wait_returns_message_on_success(self):
        sim, _, transport = self._net(loss_rate=0.0)
        delivered = []

        def proc():
            result = yield from transport.send_and_wait(self._msg())
            delivered.append(result)

        sim.spawn(proc())
        sim.run(until=10)
        assert len(delivered) == 1

    def test_send_batch_outcomes_in_input_order(self):
        sim, _, transport = self._net(loss_rate=0.3, seed=4)
        messages = [self._msg() for _ in range(40)]
        outcomes = []
        transport.send_batch(messages).add_waiter(outcomes.append)
        sim.run(until=100)
        (result,) = outcomes
        assert len(result) == 40
        # each slot is the message itself or a DeliveryError for it
        for message, outcome in zip(messages, result):
            if isinstance(outcome, DeliveryError):
                assert outcome.message is message
            else:
                assert outcome is message

    def test_batch_losses_follow_the_shared_bernoulli_stream(self):
        """Loss draws come one-per-message, in arrival order, from the
        "transport-loss" stream -- replayable independently of the run."""
        from repro.simkernel.rng import RngStream

        seed, loss_rate, count = 4, 0.3, 40
        sim, _, transport = self._net(loss_rate=loss_rate, seed=seed)
        outcomes = []
        transport.send_batch(
            [self._msg() for _ in range(count)],
        ).add_waiter(outcomes.append)
        sim.run(until=100)
        observed = [isinstance(o, DeliveryError) for o in outcomes[0]]
        # an aggregate batch arrives as one unit; draws happen per message
        # in input order at that instant
        replay = RngStream(seed, "transport-loss").random
        expected = [replay() < loss_rate for _ in range(count)]
        assert observed == expected
        assert any(observed) and not all(observed)

    def test_mixed_batch_reports_per_destination_failures(self):
        sim, network, transport = self._net(loss_rate=0.0)
        network.add_host("c", "site2").bind("in", lambda message: None)
        network.hosts["c"].fail()
        good = self._msg()
        bad = Message(Address("a", "x"), Address("c", "in"), None, 1.0)
        unbound = self._msg(port="nowhere")
        outcomes = []
        transport.send_batch([good, bad, unbound]).add_waiter(outcomes.append)
        sim.run(until=10)
        result = outcomes[0]
        assert not isinstance(result[0], DeliveryError)
        assert "destination host down" in str(result[1])
        assert "not bound" in str(result[2])


class TestCollectorRetries:
    def _lossy_grid(self, loss_rate, seed=9):
        spec = GridTopologySpec(
            devices=[DeviceSpec("dev1", "server", "field"),
                     DeviceSpec("dev2", "router", "field")],
            collector_hosts=[HostSpec("col1", "mgmt")],
            analysis_hosts=[HostSpec("inf1", "mgmt")],
            storage_host=HostSpec("stor", "mgmt"),
            interface_host=HostSpec("iface", "mgmt"),
            seed=seed,
            dataset_threshold=6,
            wan=LinkSpec(latency=0.05, bandwidth=1000.0,
                         loss_rate=loss_rate),
        )
        return GridManagementSystem(spec)

    def test_retries_recover_lost_polls(self):
        system = self._lossy_grid(loss_rate=0.25)
        # 25% loss each way kills ~44% of attempts; give the collector
        # enough retries that every poll eventually lands.
        system.collectors[0].poll_retries = 10
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        completed = system.run_until_records(6, timeout=3000)
        assert completed
        collector = system.collectors[0]
        assert collector.poll_retries_used > 0
        assert collector.polls_failed == 0

    def test_lossless_wan_uses_no_retries(self):
        system = self._lossy_grid(loss_rate=0.0)
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        assert system.collectors[0].poll_retries_used == 0

    def test_retries_exhausted_counts_failure(self):
        system = self._lossy_grid(loss_rate=0.0)
        system.network.host("dev1").fail()  # never answers
        system.collectors[0].poll_retries = 1
        system.assign_goals(system.make_paper_goals(polls_per_type=1))
        system.run(until=60)
        collector = system.collectors[0]
        assert collector.polls_failed >= 1
        assert collector.poll_retries_used >= 1


class TestLinkSpecImmutability:
    """link_loss_burst must swap LinkSpec objects, never mutate them.

    The default LAN/WAN specs are shared module-level singletons, and
    in-flight batches keep a reference to the spec they launched under:
    a mutated spec would silently change in-flight traffic and leak the
    burst into every later run in the process.
    """

    def test_linkspec_rejects_mutation(self):
        spec = LinkSpec(latency=0.01, bandwidth=100.0)
        with pytest.raises(AttributeError):
            spec.loss_rate = 0.5
        with pytest.raises(AttributeError):
            spec.latency = 1.0
        assert spec.loss_rate == 0.0

    def test_burst_swap_and_restore_cycle(self):
        from repro.workloads.faults import (
            FaultEvent, FaultPlan, apply_fault_plan,
        )

        sim = Simulator(seed=3)
        network = Network(sim)
        network.add_host("a", "site1")
        network.add_host("b", "site2")
        original = network.wan

        class _System:
            pass

        system = _System()
        system.sim = sim
        system.network = network
        plan = FaultPlan([FaultEvent(
            1.0, FaultEvent.LINK_LOSS_BURST, "wan",
            loss_rate=0.3, clear_after=5.0,
        )])
        apply_fault_plan(system, plan)
        sim.run(until=2.0)
        assert network.wan is not original
        assert network.wan.loss_rate == 0.3
        # The shared default spec itself was never touched.
        assert original.loss_rate == 0.0
        sim.run(until=10.0)
        # Restore re-installs the *original object*, so any cost or
        # route derived from it before the burst is valid again.
        assert network.wan is original
