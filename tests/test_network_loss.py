"""Tests for lossy links and the collector's SNMP retries."""

import pytest

from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.network.addressing import Address
from repro.network.topology import LinkSpec, Network
from repro.network.transport import DeliveryError, Message, Transport
from repro.simkernel.simulator import Simulator


class TestLossyLinks:
    def test_loss_rate_validated(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=1, loss_rate=1.0)
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=1, loss_rate=-0.1)
        assert LinkSpec(latency=0, bandwidth=1, loss_rate=0.5).loss_rate == 0.5

    def _run_messages(self, loss_rate, count, seed=9):
        sim = Simulator(seed=seed)
        network = Network(
            sim, wan=LinkSpec(latency=0.01, bandwidth=1000.0,
                              loss_rate=loss_rate))
        network.add_host("a", "site1")
        receiver = network.add_host("b", "site2")
        received = []
        receiver.bind("in", received.append)
        transport = Transport(network)
        outcomes = []
        for _ in range(count):
            transport.send(Message(
                Address("a", "x"), Address("b", "in"), None, 1.0,
            )).add_waiter(outcomes.append)
        sim.run(until=1000)
        return received, outcomes, transport

    def test_zero_loss_delivers_everything(self):
        received, outcomes, transport = self._run_messages(0.0, 50)
        assert len(received) == 50
        assert transport.messages_dropped == 0

    def test_half_loss_drops_roughly_half(self):
        received, outcomes, transport = self._run_messages(0.5, 200)
        assert 60 <= len(received) <= 140  # loose statistical bound
        assert transport.messages_dropped == 200 - len(received)
        drops = [o for o in outcomes if isinstance(o, DeliveryError)]
        assert all("lost in transit" in str(error) for error in drops)

    def test_loss_is_seed_deterministic(self):
        first, _, _ = self._run_messages(0.3, 100, seed=5)
        second, _, _ = self._run_messages(0.3, 100, seed=5)
        assert len(first) == len(second)


class TestCollectorRetries:
    def _lossy_grid(self, loss_rate, seed=9):
        spec = GridTopologySpec(
            devices=[DeviceSpec("dev1", "server", "field"),
                     DeviceSpec("dev2", "router", "field")],
            collector_hosts=[HostSpec("col1", "mgmt")],
            analysis_hosts=[HostSpec("inf1", "mgmt")],
            storage_host=HostSpec("stor", "mgmt"),
            interface_host=HostSpec("iface", "mgmt"),
            seed=seed,
            dataset_threshold=6,
            wan=LinkSpec(latency=0.05, bandwidth=1000.0,
                         loss_rate=loss_rate),
        )
        return GridManagementSystem(spec)

    def test_retries_recover_lost_polls(self):
        system = self._lossy_grid(loss_rate=0.25)
        # 25% loss each way kills ~44% of attempts; give the collector
        # enough retries that every poll eventually lands.
        system.collectors[0].poll_retries = 10
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        completed = system.run_until_records(6, timeout=3000)
        assert completed
        collector = system.collectors[0]
        assert collector.poll_retries_used > 0
        assert collector.polls_failed == 0

    def test_lossless_wan_uses_no_retries(self):
        system = self._lossy_grid(loss_rate=0.0)
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=2000)
        assert system.collectors[0].poll_retries_used == 0

    def test_retries_exhausted_counts_failure(self):
        system = self._lossy_grid(loss_rate=0.0)
        system.network.host("dev1").fail()  # never answers
        system.collectors[0].poll_retries = 1
        system.assign_goals(system.make_paper_goals(polls_per_type=1))
        system.run(until=60)
        collector = system.collectors[0]
        assert collector.polls_failed >= 1
        assert collector.poll_retries_used >= 1
