"""Tests for the reliable delivery channel (ack / retransmit / dedup /
dead-letter / redelivery) and its integration with the grid system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.network.addressing import Address
from repro.network.reliable import ACK_PORT, DATA_PORT, ReliableChannel
from repro.network.topology import LinkSpec, Network
from repro.network.transport import Message, Transport
from repro.simkernel.simulator import Simulator


def _channel(loss_rate, seed=9, **kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, wan=LinkSpec(
        latency=0.01, bandwidth=1000.0, loss_rate=loss_rate))
    network.add_host("a", "site1")
    receiver = network.add_host("b", "site2")
    received = []
    receiver.bind("in", lambda message: received.append(message.payload))
    transport = Transport(network)
    channel = ReliableChannel(transport, **kwargs)
    return sim, network, channel, received


def _post_many(channel, count):
    for index in range(count):
        channel.post(Message(
            Address("a", "out"), Address("b", "in"), index, 1.0,
        ))


class TestReliableDelivery:
    def test_lossless_delivers_without_retransmits(self):
        # ack_timeout must exceed NIC serialization of the coalesced
        # batch, or a slow first ack triggers a (harmless) spurious
        # retransmission that dedup absorbs.
        sim, _, channel, received = _channel(0.0, ack_timeout=10.0)
        _post_many(channel, 20)
        sim.run(until=100)
        assert received == list(range(20))
        assert channel.retransmits == 0
        assert channel.dup_drops == 0
        assert channel.pending_count() == 0
        assert channel.messages_acked == 20
        assert channel.mean_latency() > 0

    def test_heavy_loss_still_delivers_exactly_once(self):
        sim, _, channel, received = _channel(0.4, ack_timeout=1.0)
        _post_many(channel, 30)
        sim.run(until=500)
        # exactly-once above the suppression point: every payload once,
        # in-order per stream is NOT guaranteed (retransmits reorder)
        assert sorted(received) == list(range(30))
        assert channel.retransmits > 0
        assert channel.pending_count() == 0
        # At-least-once below the dedup point: a message whose ACKs were
        # all lost may be dead-lettered even though it WAS delivered --
        # the no-silent-loss invariant is delivered + dead >= sent, and a
        # dead letter is never a silently missing payload here.
        for dead in channel.dead_letters:
            assert dead.message.payload in received

    def test_batch_post_delivers_exactly_once(self):
        sim, _, channel, received = _channel(0.3, ack_timeout=1.0)
        channel.post_batch([
            Message(Address("a", "out"), Address("b", "in"), index, 1.0)
            for index in range(15)
        ])
        sim.run(until=500)
        assert sorted(received) == list(range(15))
        assert channel.pending_count() == 0

    def test_dead_host_dead_letters_with_accounting(self):
        sim, network, channel, received = _channel(
            0.0, ack_timeout=0.5, max_attempts=3)
        network.hosts["b"].fail()
        _post_many(channel, 2)
        sim.run(until=100)
        assert received == []
        assert len(channel.dead_letters) == 2
        dead = channel.dead_letters[0]
        assert dead.attempts == 3
        assert "no ack after 3 attempts" in dead.reason
        assert dead.dead_at > dead.first_sent
        assert channel.retransmits == 4  # 2 retransmits per message
        assert channel.pending_count() == 0

    def test_dead_letter_hook_fires(self):
        sim, network, channel, _ = _channel(
            0.0, ack_timeout=0.5, max_attempts=2)
        network.hosts["b"].fail()
        hooked = []
        channel.on_dead_letter = hooked.append
        _post_many(channel, 1)
        sim.run(until=50)
        assert len(hooked) == 1
        assert hooked[0] is channel.dead_letters[0]

    def test_recovered_host_receives_retransmission(self):
        sim, network, channel, received = _channel(
            0.0, ack_timeout=1.0, max_attempts=6)
        network.hosts["b"].fail()
        _post_many(channel, 3)
        sim.schedule(5.0, network.hosts["b"].recover, ())
        sim.run(until=200)
        assert sorted(received) == [0, 1, 2]
        assert channel.retransmits > 0
        assert not channel.dead_letters

    def test_unbound_port_counts_undeliverable_but_acks(self):
        sim, _, channel, _ = _channel(0.0, ack_timeout=0.5, max_attempts=3)
        channel.post(Message(
            Address("a", "out"), Address("b", "nowhere"), "x", 1.0))
        sim.run(until=50)
        assert channel.undeliverable == 1
        # acked so the sender does not mistake delivery for loss
        assert channel.pending_count() == 0
        assert not channel.dead_letters

    def test_channel_ports_bound_lazily(self):
        sim, network, channel, _ = _channel(0.0)
        assert network.hosts["a"].handler_for(ACK_PORT) is None
        _post_many(channel, 1)
        assert network.hosts["a"].handler_for(ACK_PORT) is not None
        assert network.hosts["b"].handler_for(DATA_PORT) is not None

    def test_parameter_validation(self):
        transport = Transport(Network(Simulator(seed=0)))
        with pytest.raises(ValueError):
            ReliableChannel(transport, ack_timeout=0)
        with pytest.raises(ValueError):
            ReliableChannel(transport, backoff=0.5)
        with pytest.raises(ValueError):
            ReliableChannel(transport, max_attempts=0)

    def test_stats_shape(self):
        sim, _, channel, _ = _channel(0.0)
        _post_many(channel, 5)
        sim.run(until=50)
        stats = channel.stats()
        assert stats["sent"] == 5
        assert stats["delivered"] == 5
        assert stats["acked"] == 5
        assert stats["dead_letters"] == 0
        assert stats["pending"] == 0
        assert stats["parked"] == 0
        assert stats["redelivered"] == 0
        assert stats["redelivery_gave_up"] == 0
        assert stats["permanently_dead"] == 0


class TestRedelivery:
    def _healing_channel(self, **kwargs):
        parameters = dict(ack_timeout=0.5, max_attempts=3, redelivery=True,
                          redelivery_interval=1.0,
                          redelivery_max_interval=4.0,
                          redelivery_give_up_after=200.0)
        parameters.update(kwargs)
        return _channel(0.0, **parameters)

    def test_parked_then_redelivered_after_heal(self):
        sim, network, channel, received = self._healing_channel()
        network.hosts["b"].fail()
        _post_many(channel, 3)
        sim.schedule(20.0, network.hosts["b"].recover, ())
        sim.run(until=200)
        assert sorted(received) == [0, 1, 2]
        assert channel.redelivered == 3
        assert channel.redelivery_gave_up == 0
        assert channel.parked_count() == 0
        assert channel.pending_count() == 0
        # the dead-letter log keeps the entries, but none is terminal
        assert len(channel.dead_letters) == 3
        assert not channel.permanently_dead()
        assert all(d.status == "redelivered" for d in channel.dead_letters)
        assert all(d.redelivered_at is not None for d in channel.dead_letters)

    def test_dead_letter_hook_sees_parked_status(self):
        sim, network, channel, _ = self._healing_channel()
        network.hosts["b"].fail()
        statuses = []
        channel.on_dead_letter = lambda dead: statuses.append(dead.status)
        redelivered = []
        channel.on_redelivered = redelivered.append
        _post_many(channel, 1)
        sim.schedule(10.0, network.hosts["b"].recover, ())
        sim.run(until=100)
        assert statuses == ["parked"]
        assert len(redelivered) == 1
        assert redelivered[0].terminal is False

    def test_budget_exhaustion_gives_up(self):
        sim, network, channel, received = self._healing_channel(
            redelivery_give_up_after=10.0)
        network.hosts["b"].fail()
        gave_up = []
        channel.on_redelivery_gave_up = gave_up.append
        _post_many(channel, 2)
        sim.run(until=100)  # never heals inside the budget
        assert received == []
        assert channel.redelivery_gave_up == 2
        assert channel.parked_count() == 0
        assert len(gave_up) == 2
        assert all(dead.terminal for dead in gave_up)
        assert len(channel.permanently_dead()) == 2

    def test_redelivery_off_keeps_terminal_dead_letters(self):
        sim, network, channel, _ = _channel(0.0, ack_timeout=0.5,
                                            max_attempts=3)
        network.hosts["b"].fail()
        _post_many(channel, 2)
        sim.run(until=100)
        assert all(d.status == "dead" and d.terminal
                   for d in channel.dead_letters)
        assert channel.parked_count() == 0
        assert len(channel.permanently_dead()) == 2

    def test_re_exhaustion_reparks_without_duplicate_entry(self):
        # Heal just long enough for the probe to re-ship, then fail again
        # before the re-shipped envelope can land: the channel must reuse
        # the existing dead-letter entry and park it again.
        sim, network, channel, received = self._healing_channel()
        host = network.hosts["b"]
        host.fail()
        _post_many(channel, 1)
        # First exhaustion at ~0.5+1.0+2.0=3.5s; probe at ~4.5 sees the
        # host up, re-ships; the immediate re-fail drops the wire and the
        # envelope exhausts again, then the second heal lets it through.
        sim.schedule(4.0, host.recover, ())
        sim.schedule(4.6, host.fail, ())
        sim.schedule(40.0, host.recover, ())
        sim.run(until=200)
        assert received == [0]
        assert len(channel.dead_letters) == 1
        assert channel.redelivered >= 2
        assert channel.dead_letters[0].status == "redelivered"
        assert not channel.permanently_dead()

    def test_redelivery_preserves_exactly_once_for_unacked_delivery(self):
        # Lose ONLY acks: the payload is delivered, every ack is dropped,
        # the sender dead-letters and later redelivers -- the receiver
        # must suppress the redelivered copy as a duplicate.
        sim, network, channel, received = self._healing_channel()
        original_post = channel.transport.post

        def ack_dropping_post(message):
            if message.protocol == "rel-ack":
                return
            original_post(message)

        channel.transport.post = ack_dropping_post
        _post_many(channel, 1)
        sim.run(until=30)  # exhausts, parks, probes see the host up
        channel.transport.post = original_post
        sim.run(until=100)
        assert received == [0]  # exactly once above dedup
        assert channel.dup_drops >= 1
        assert channel.redelivered >= 1

    def test_redelivery_parameter_validation(self):
        transport = Transport(Network(Simulator(seed=0)))
        with pytest.raises(ValueError):
            ReliableChannel(transport, redelivery_interval=0)
        with pytest.raises(ValueError):
            ReliableChannel(transport, redelivery_backoff=0.5)
        with pytest.raises(ValueError):
            ReliableChannel(transport, redelivery_interval=5.0,
                            redelivery_max_interval=1.0)
        with pytest.raises(ValueError):
            ReliableChannel(transport, redelivery_give_up_after=0)

    def test_redelivery_metrics_registered(self):
        from repro.simkernel.metrics import MetricRegistry

        sim, network, channel, _ = self._healing_channel()
        registry = MetricRegistry()
        channel.bind_metrics(registry, {"grid": "network"})
        network.hosts["b"].fail()
        _post_many(channel, 1)
        sim.schedule(10.0, network.hosts["b"].recover, ())
        sim.run(until=100)
        assert channel.redelivered == 1
        snapshot = registry.snapshot()
        redelivered = [name for name in snapshot["counters"]
                       if "reliable.redelivered" in name]
        assert redelivered
        assert snapshot["counters"][redelivered[0]] == 1


class TestRedeliveryProperty:
    """Hypothesis: random loss + a random heal window never loses or
    duplicates a payload above the dedup point, redelivery included."""

    @settings(max_examples=25, deadline=None)
    @given(
        loss_rate=st.floats(min_value=0.0, max_value=0.5),
        fail_at=st.floats(min_value=0.0, max_value=10.0),
        heal_after=st.floats(min_value=0.5, max_value=60.0),
        count=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_exactly_once_above_dedup(self, loss_rate, fail_at, heal_after,
                                      count, seed):
        sim, network, channel, received = _channel(
            loss_rate, seed=seed, ack_timeout=0.5, backoff=2.0,
            max_attempts=3, redelivery=True, redelivery_interval=1.0,
            redelivery_max_interval=8.0, redelivery_give_up_after=None,
        )
        host = network.hosts["b"]
        sim.schedule(fail_at, host.fail, ())
        sim.schedule(fail_at + heal_after, host.recover, ())
        _post_many(channel, count)
        # Run long past the outage so every parked envelope redelivers.
        sim.run(until=fail_at + heal_after + 300.0)
        # exactly-once above the suppression point, loss or no loss
        assert sorted(received) == list(range(count))
        # nothing permanently lost: the destination healed
        assert not channel.permanently_dead()
        assert channel.parked_count() == 0
        assert channel.pending_count() == 0


def _grid(loss_rate, seed=9, **overrides):
    parameters = dict(
        devices=[DeviceSpec("dev1", "server", "field"),
                 DeviceSpec("dev2", "router", "field")],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf1", "mgmt"), HostSpec("inf2", "mgmt")],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=6,
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=loss_rate),
    )
    parameters.update(overrides)
    return GridManagementSystem(GridTopologySpec(**parameters))


class TestGridIntegration:
    def test_reliability_off_by_default(self):
        system = _grid(0.0)
        assert system.reliable_channel is None
        assert system.platform.reliable_channel is None

    def test_reliability_flag_installs_channel(self):
        system = _grid(0.0, reliability=True)
        assert isinstance(system.reliable_channel, ReliableChannel)
        assert system.platform.reliable_channel is system.reliable_channel

    def test_reliability_dict_passes_channel_kwargs(self):
        system = _grid(0.0, reliability={"ack_timeout": 7.5,
                                         "max_attempts": 3})
        assert system.reliable_channel.ack_timeout == 7.5
        assert system.reliable_channel.max_attempts == 3

    def test_lossless_run_same_results_with_and_without_channel(self):
        """On loss-free links the channel only adds acks; the management
        outcome (records analyzed, reports, findings) is unchanged."""
        outcomes = []
        for reliability in (False, True):
            system = _grid(0.0, reliability=reliability)
            system.collectors[0].poll_retries = 5
            system.assign_goals(system.make_paper_goals(polls_per_type=2))
            assert system.run_until_records(6, timeout=2000)
            outcomes.append((
                sum(r.records_analyzed for r in system.interface.reports),
                len(system.interface.reports),
                sorted(f.kind for f in system.interface.all_findings()),
            ))
        assert outcomes[0] == outcomes[1]

    def test_lossy_wan_record_shipping_survives(self):
        # 15% WAN loss: collector->classifier shipping and data-ready
        # notifies ride the channel and must all land.
        system = _grid(0.15, reliability=True)
        system.collectors[0].poll_retries = 10
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        assert system.run_until_records(6, timeout=4000)
        channel = system.reliable_channel
        assert channel.messages_acked > 0
        assert not channel.dead_letters
        assert system.classifier.records_classified == 6
