"""Unit tests for addressing, hosts, sites and link selection."""

import pytest

from repro.network.addressing import Address
from repro.network.topology import DEFAULT_LAN, LOOPBACK, LinkSpec, Network
from repro.simkernel.resources import ResourceKind
from repro.simkernel.simulator import Simulator


class TestAddress:
    def test_parse_round_trip(self):
        address = Address.parse("host1:snmp")
        assert address.host == "host1"
        assert address.port == "snmp"
        assert str(address) == "host1:snmp"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Address.parse("no-colon")

    def test_equality_and_hash(self):
        assert Address("a", "p") == Address("a", "p")
        assert Address("a", "p") != Address("a", "q")
        assert hash(Address("a", "p")) == hash(Address("a", "p"))

    def test_immutable(self):
        address = Address("a", "p")
        with pytest.raises(AttributeError):
            address.host = "b"

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            Address("", "p")
        with pytest.raises(ValueError):
            Address("h", "")


class TestLinkSpec:
    def test_transit_time(self):
        link = LinkSpec(latency=0.1, bandwidth=100.0)
        assert link.transit_time(50.0) == pytest.approx(0.6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LinkSpec(latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            LinkSpec(latency=0, bandwidth=0)


class TestNetwork:
    @pytest.fixture
    def network(self):
        return Network(Simulator(seed=1))

    def test_add_and_lookup_host(self, network):
        host = network.add_host("h1", "site1", role="manager")
        assert network.host("h1") is host
        assert host.site.name == "site1"
        assert "h1" in network.sites["site1"].hosts[0].name

    def test_duplicate_host_rejected(self, network):
        network.add_host("h1", "site1")
        with pytest.raises(ValueError):
            network.add_host("h1", "site2")

    def test_unknown_host_raises(self, network):
        with pytest.raises(KeyError):
            network.host("ghost")

    def test_link_selection_hierarchy(self, network):
        a = network.add_host("a", "site1")
        b = network.add_host("b", "site1")
        c = network.add_host("c", "site2")
        assert network.link_between(a, a) is LOOPBACK
        assert network.link_between(a, b) is a.site.lan
        assert network.link_between(a, c) is network.wan

    def test_hosts_by_role(self, network):
        network.add_host("m", "site1", role="manager")
        network.add_host("d1", "site1", role="device")
        network.add_host("d2", "site1", role="device")
        assert len(network.hosts_by_role("device")) == 2

    def test_host_resources_have_kinds(self, network):
        host = network.add_host("h", "site1", cpu_capacity=20.0)
        assert host.cpu.capacity == 20.0
        assert host.resource(ResourceKind.CPU) is host.cpu
        assert host.resource(ResourceKind.NET) is host.nic
        assert host.resource(ResourceKind.DISK) is host.disk
        with pytest.raises(ValueError):
            host.resource("quantum")

    def test_port_binding_lifecycle(self, network):
        host = network.add_host("h", "site1")
        handler = lambda message: None
        host.bind("p", handler)
        assert host.handler_for("p") is handler
        with pytest.raises(ValueError):
            host.bind("p", handler)
        host.unbind("p")
        assert host.handler_for("p") is None

    def test_fail_and_recover(self, network):
        host = network.add_host("h", "site1")
        assert host.up
        host.fail()
        assert not host.up
        host.recover()
        assert host.up

    def test_site_lan_defaults(self, network):
        site = network.site("fresh")
        assert site.lan is DEFAULT_LAN

    def test_duplicate_site_rejected(self, network):
        network.add_site("s")
        with pytest.raises(ValueError):
            network.add_site("s")
