"""Unit tests for message transport: delivery, costs, failures."""

import pytest

from repro.network.addressing import Address
from repro.network.protocols import HTTP, SMTP, BatchEnvelope, protocol_overhead
from repro.network.topology import LinkSpec, Network
from repro.network.transport import DeliveryError, Message, Transport
from repro.simkernel.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def network(sim):
    network = Network(sim, wan=LinkSpec(latency=0.05, bandwidth=1000.0))
    network.add_host("a", "site1")
    network.add_host("b", "site1")
    network.add_host("c", "site2")
    return network


@pytest.fixture
def transport(network):
    return Transport(network)


def _deliver(sim, transport, message):
    received = []
    dst = transport.network.host(message.dest.host)
    if dst.handler_for(message.dest.port) is None:
        dst.bind(message.dest.port, received.append)
    transport.send(message)
    sim.run(until=100)
    return received


def test_delivery_invokes_bound_handler(sim, network, transport):
    message = Message(Address("a", "x"), Address("b", "in"), "payload", 10.0)
    received = _deliver(sim, transport, message)
    assert len(received) == 1
    assert received[0].payload == "payload"


def test_both_nics_charged(sim, network, transport):
    message = Message(Address("a", "x"), Address("b", "in"), None, 10.0)
    _deliver(sim, transport, message)
    assert network.host("a").nic.total_units == 10.0
    assert network.host("b").nic.total_units == 10.0


def test_latency_includes_link_and_serialization(sim, network, transport):
    message = Message(Address("a", "x"), Address("c", "in"), None, 100.0)
    received = _deliver(sim, transport, message)
    # sender NIC: 100 units / 10 cap = 10s; WAN: 0.05 + 100/1000 = 0.15s
    assert received[0].latency == pytest.approx(10.15)


def test_zero_size_message_is_free_and_fast(sim, network, transport):
    message = Message(Address("a", "x"), Address("b", "in"), None, 0.0)
    received = _deliver(sim, transport, message)
    assert received
    assert network.host("a").nic.total_units == 0.0


def test_unknown_destination_reports_error(sim, network, transport):
    message = Message(Address("a", "x"), Address("ghost", "in"), None, 1.0)
    outcomes = []
    transport.send(message).add_waiter(outcomes.append)
    sim.run(until=10)
    assert isinstance(outcomes[0], DeliveryError)
    assert transport.messages_dropped == 1


def test_down_destination_drops(sim, network, transport):
    network.host("b").fail()
    message = Message(Address("a", "x"), Address("b", "in"), None, 1.0)
    outcomes = []
    transport.send(message).add_waiter(outcomes.append)
    sim.run(until=10)
    assert isinstance(outcomes[0], DeliveryError)


def test_down_sender_drops(sim, network, transport):
    network.host("a").fail()
    message = Message(Address("a", "x"), Address("b", "in"), None, 1.0)
    outcomes = []
    transport.send(message).add_waiter(outcomes.append)
    sim.run(until=10)
    assert isinstance(outcomes[0], DeliveryError)


def test_unbound_port_drops(sim, network, transport):
    message = Message(Address("a", "x"), Address("b", "nowhere"), None, 1.0)
    outcomes = []
    transport.send(message).add_waiter(outcomes.append)
    sim.run(until=10)
    assert isinstance(outcomes[0], DeliveryError)


def test_send_and_wait_raises_in_process(sim, network, transport):
    def proc():
        message = Message(Address("a", "x"), Address("ghost", "in"), None, 1.0)
        try:
            yield from transport.send_and_wait(message)
        except DeliveryError:
            return "caught"
        return "no-error"

    process = sim.spawn(proc())
    sim.run(until=10)
    assert process.result == "caught"


def test_stats_track_counts(sim, network, transport):
    good = Message(Address("a", "x"), Address("b", "in"), None, 2.0)
    bad = Message(Address("a", "x"), Address("ghost", "in"), None, 2.0)
    network.host("b").bind("in", lambda m: None)
    transport.send(good)
    transport.send(bad)
    sim.run(until=10)
    stats = transport.stats()
    assert stats["sent"] == 2
    assert stats["delivered"] == 1
    assert stats["dropped"] == 1
    assert stats["units_carried"] == 2.0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(Address("a", "x"), Address("b", "in"), None, -1.0)


class TestProtocols:
    def test_http_vs_smtp_overhead(self):
        assert HTTP.size(10.0) < SMTP.size(10.0)

    def test_lookup_by_name(self):
        assert protocol_overhead("http") is HTTP
        with pytest.raises(KeyError):
            protocol_overhead("carrier-pigeon")

    def test_envelope_wire_size_sums_records(self):
        class FakeRecord:
            size_units = 2.0

        envelope = BatchEnvelope([FakeRecord(), FakeRecord()], protocol=HTTP)
        assert envelope.payload_units == 4.0
        assert envelope.wire_units == pytest.approx(HTTP.size(4.0))
        assert len(envelope) == 2
