"""Batched transport delivery: coalescing, aggregates, failure paths.

The coalescing lane must be *observationally identical* to per-message
delivery for loss-free links -- same NIC ledgers, same per-message
``delivered_at``, same handler order.  The aggregate lane
(:meth:`Transport.send_batch`) trades per-message timing for one transfer.
These tests pin both behaviours plus every failure path under batching.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.addressing import Address
from repro.network.topology import LinkSpec, Network
from repro.network.transport import DeliveryError, Message, Transport
from repro.simkernel.simulator import Simulator


def build(seed=1, loss=0.0, coalesce=True):
    sim = Simulator(seed=seed)
    network = Network(
        sim, wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=loss),
    )
    network.add_site(
        "site1", lan=LinkSpec(latency=0.001, bandwidth=10000.0, loss_rate=loss),
    )
    network.add_host("a", "site1")
    network.add_host("b", "site1")
    network.add_host("c", "site2")
    transport = Transport(network, coalesce=coalesce)
    return sim, network, transport


def burst(transport, count, sizes=None, dest="b", port="in"):
    """Send ``count`` same-flow messages in one instant; return them."""
    messages = []
    for index in range(count):
        size = sizes[index] if sizes is not None else 1.0
        message = Message(Address("a", "x"), Address(dest, port), index, size)
        transport.send(message)
        messages.append(message)
    return messages


class TestCoalescing:
    def test_same_instant_burst_is_one_wire_batch(self):
        sim, network, transport = build()
        received = []
        network.host("b").bind("in", received.append)
        burst(transport, 10)
        sim.run(until=100)
        assert transport.stats()["delivered"] == 10
        assert transport.stats()["wire_batches"] == 1
        assert transport.stats()["coalesced"] == 10

    def test_handlers_invoked_in_send_order(self):
        sim, network, transport = build()
        received = []
        network.host("b").bind("in", received.append)
        burst(transport, 20)
        sim.run(until=100)
        assert [m.payload for m in received] == list(range(20))

    def test_coalesced_timing_matches_per_message_pipeline(self):
        # message i arrives at cumsum(sizes[:i+1])/cap + latency + size_i/bw
        sim, network, transport = build()
        received = []
        network.host("b").bind("in", received.append)
        sizes = [2.0, 3.0, 5.0]
        burst(transport, 3, sizes=sizes)
        sim.run(until=100)
        cap, latency, bw = 10.0, 0.001, 10000.0
        cumulative = 0.0
        for message, size in zip(received, sizes):
            cumulative += size
            expected = cumulative / cap + latency + size / bw
            assert message.delivered_at == pytest.approx(expected)

    def test_sequential_instants_do_not_coalesce(self):
        sim, network, transport = build()
        network.host("b").bind("in", lambda m: None)

        def sender():
            for _ in range(4):
                transport.post(Message(
                    Address("a", "x"), Address("b", "in"), None, 1.0))
                yield 1.0

        sim.spawn(sender())
        sim.run(until=100)
        assert transport.stats()["wire_batches"] == 4
        assert transport.stats()["coalesced"] == 0

    def test_zero_size_messages_skip_nic_and_arrive_first(self):
        sim, network, transport = build()
        received = []
        network.host("b").bind("in", received.append)
        burst(transport, 3, sizes=[5.0, 0.0, 5.0])
        sim.run(until=100)
        assert network.host("a").nic.total_units == 10.0
        # the free message only waits the link latency
        assert [m.payload for m in received] == [1, 0, 2]


class TestAggregateLane:
    def test_send_batch_single_transit(self):
        sim, network, transport = build()
        received = []
        network.host("c").bind("in", received.append)
        messages = [
            Message(Address("a", "x"), Address("c", "in"), index, 10.0)
            for index in range(5)
        ]
        outcomes = []
        transport.send_batch(messages).add_waiter(outcomes.append)
        sim.run(until=100)
        assert [m.payload for m in received] == list(range(5))
        # one transfer: all five arrive together at
        # 50/10 (NIC) + 0.05 + 50/1000 (one summed WAN transit)
        arrival = 50.0 / 10.0 + 0.05 + 50.0 / 1000.0
        assert all(m.delivered_at == pytest.approx(arrival) for m in received)
        assert outcomes[0] == received

    def test_send_batch_splits_by_flow(self):
        sim, network, transport = build()
        network.host("b").bind("in", lambda m: None)
        network.host("c").bind("in", lambda m: None)
        transport.send_batch([
            Message(Address("a", "x"), Address("b", "in"), None, 1.0),
            Message(Address("a", "x"), Address("c", "in"), None, 1.0),
            Message(Address("a", "x"), Address("b", "in"), None, 1.0),
        ])
        sim.run(until=100)
        assert transport.stats()["delivered"] == 3
        assert transport.stats()["wire_batches"] == 2

    def test_empty_batch_triggers_immediately(self):
        sim, _, transport = build()
        outcomes = []
        transport.send_batch([]).add_waiter(outcomes.append)
        sim.run(until=1)
        assert outcomes == [[]]
        assert transport.stats()["sent"] == 0

    def test_mixed_outcomes_in_input_order(self):
        sim, network, transport = build()
        network.host("b").bind("in", lambda m: None)
        outcomes = []
        transport.send_batch([
            Message(Address("a", "x"), Address("b", "in"), None, 1.0),
            Message(Address("a", "x"), Address("ghost", "in"), None, 1.0),
        ]).add_waiter(outcomes.append)
        sim.run(until=100)
        results = outcomes[0]
        assert isinstance(results[0], Message)
        assert isinstance(results[1], DeliveryError)


class TestFailurePathsUnderBatching:
    def drop_reasons(self, transport, messages, sim):
        outcomes = []
        for message in messages:
            transport.send(message).add_waiter(outcomes.append)
        sim.run(until=100)
        return outcomes

    def test_unknown_sender_is_a_delivery_error(self):
        # regression: the old path raised a bare KeyError out of the kernel
        sim, network, transport = build()
        outcomes = self.drop_reasons(transport, [
            Message(Address("ghost", "x"), Address("b", "in"), None, 1.0),
        ], sim)
        assert isinstance(outcomes[0], DeliveryError)
        assert outcomes[0].reason == "unknown sender host"

    def test_unknown_destination_drops_whole_burst(self):
        sim, network, transport = build()
        outcomes = self.drop_reasons(transport, [
            Message(Address("a", "x"), Address("ghost", "in"), None, 1.0)
            for _ in range(3)
        ], sim)
        assert len(outcomes) == 3
        assert all(o.reason == "unknown destination host" for o in outcomes)
        assert transport.stats()["dropped"] == 3

    def test_sender_down_drops_whole_burst(self):
        sim, network, transport = build()
        network.host("a").fail()
        outcomes = self.drop_reasons(transport, [
            Message(Address("a", "x"), Address("b", "in"), None, 1.0)
            for _ in range(2)
        ], sim)
        assert all(o.reason == "sender host down" for o in outcomes)

    def test_destination_down_judged_per_message_at_arrival(self):
        sim, network, transport = build()
        network.host("b").bind("in", lambda m: None)
        outcomes = []
        for index in range(2):
            message = Message(Address("a", "x"), Address("b", "in"),
                              index, 10.0)
            transport.send(message).add_waiter(outcomes.append)
        # first arrives at ~1.002s, second at ~2.002s; fail b in between
        sim.schedule(1.5, network.host("b").fail, ())
        sim.run(until=100)
        kinds = [type(o).__name__ for o in outcomes]
        assert kinds == ["Message", "DeliveryError"]
        assert outcomes[1].reason == "destination host down"

    def test_unbound_port_drops_each_message(self):
        sim, network, transport = build()
        outcomes = self.drop_reasons(transport, [
            Message(Address("a", "x"), Address("b", "nowhere"), None, 1.0)
            for _ in range(2)
        ], sim)
        assert all(isinstance(o, DeliveryError) for o in outcomes)
        assert all("not bound" in o.reason for o in outcomes)

    def test_loss_drawn_per_message(self):
        sim, network, transport = build(seed=7, loss=0.5)
        received = []
        network.host("b").bind("in", received.append)
        burst(transport, 200)
        sim.run(until=1000)
        stats = transport.stats()
        assert stats["delivered"] + stats["dropped"] == 200
        # with per-message draws at p=0.5, both outcomes must occur
        assert stats["delivered"] > 0
        assert stats["dropped"] > 0

    def test_loss_respects_seeded_rng_stream(self):
        counts = []
        for _ in range(2):
            sim, network, transport = build(seed=11, loss=0.3)
            network.host("b").bind("in", lambda m: None)
            burst(transport, 100)
            sim.run(until=1000)
            counts.append(transport.stats()["delivered"])
        assert counts[0] == counts[1]


def run_flow(coalesce, sizes, seed=5):
    """One same-instant burst; returns (ledgers, order, delivery times)."""
    sim, network, transport = build(seed=seed, coalesce=coalesce)
    received = []
    network.host("b").bind("in", received.append)
    burst(transport, len(sizes), sizes=list(sizes))
    sim.run(until=10000)
    ledgers = (
        dict(network.host("a").nic.units_by_label),
        network.host("a").nic.busy_time,
        dict(network.host("b").nic.units_by_label),
        network.host("b").nic.busy_time,
    )
    order = [m.payload for m in received]
    times = [m.delivered_at for m in received]
    return ledgers, order, times


class TestBatchedUnbatchedEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.floats(min_value=0.1, max_value=5.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=12,
    ))
    def test_identical_ledgers_order_and_times_on_loss_free_links(self, sizes):
        batched = run_flow(coalesce=True, sizes=sizes)
        unbatched = run_flow(coalesce=False, sizes=sizes)
        assert batched[1] == unbatched[1]  # delivery order
        assert batched[2] == pytest.approx(unbatched[2])  # delivered_at
        # NIC ledgers: same labels, same units, same busy time
        for got, want in zip(batched[0], unbatched[0]):
            if isinstance(got, dict):
                assert got.keys() == want.keys()
                for key in got:
                    assert got[key] == pytest.approx(want[key])
            else:
                assert got == pytest.approx(want)
