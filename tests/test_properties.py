"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.evaluation.tables import format_table
from repro.rules.facts import Fact, WorkingMemory
from repro.simkernel.events import EventQueue
from repro.simkernel.metrics import TimeSeries
from repro.simkernel.resources import Resource, ResourceKind
from repro.simkernel.rng import derive_seed
from repro.simkernel.simulator import Simulator
from repro.snmp.mib import MibTree
from repro.snmp.oids import OID


oid_strategy = st.lists(
    st.integers(min_value=0, max_value=99), min_size=1, max_size=8,
).map(tuple)


class TestOIDProperties:
    @given(oid_strategy)
    def test_string_round_trip(self, parts):
        oid = OID(parts)
        assert OID(str(oid)) == oid

    @given(oid_strategy, oid_strategy)
    def test_ordering_matches_tuple_ordering(self, a, b):
        assert (OID(a) < OID(b)) == (a < b)
        assert (OID(a) == OID(b)) == (a == b)

    @given(oid_strategy, st.lists(st.integers(0, 9), min_size=1, max_size=3))
    def test_child_extends_and_prefixes(self, parts, suffix):
        oid = OID(parts)
        child = oid.child(*suffix)
        assert oid.is_prefix_of(child)
        assert child > oid
        assert len(child) == len(oid) + len(suffix)


class TestMibProperties:
    @given(st.sets(oid_strategy, min_size=1, max_size=30))
    def test_getnext_chain_visits_all_in_order(self, oid_parts):
        tree = MibTree()
        for parts in oid_parts:
            tree.register_scalar(OID(parts), "o", 0)
        visited = []
        cursor = tree.get_next(OID((0,))) if OID((0,)) not in tree else None
        # walk from the absolute bottom
        current = tree.get(min(OID(p) for p in oid_parts))
        visited.append(current.oid)
        while True:
            nxt = tree.get_next(visited[-1])
            if nxt is None:
                break
            visited.append(nxt.oid)
        expected = sorted(OID(p) for p in oid_parts)
        assert visited == expected


class TestWorkingMemoryProperties:
    fact_strategy = st.tuples(
        st.sampled_from(["sample", "problem", "baseline"]),
        st.dictionaries(
            st.sampled_from(["device", "metric", "value", "site"]),
            st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b"])),
            max_size=4,
        ),
    )

    @given(st.lists(fact_strategy, max_size=30))
    def test_size_equals_distinct_content(self, raw_facts):
        memory = WorkingMemory()
        distinct = set()
        for fact_type, attrs in raw_facts:
            fact = Fact(fact_type, **attrs)
            distinct.add(fact.content_key())
            memory.assert_fact(fact)
        assert len(memory) == len(distinct)

    @given(st.lists(fact_strategy, min_size=1, max_size=20))
    def test_retract_all_empties_memory(self, raw_facts):
        memory = WorkingMemory()
        stored = [memory.assert_new(t, **a) for t, a in raw_facts]
        for fact in stored:
            memory.retract(fact)
        assert len(memory) == 0
        assert memory.facts() == []


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_pops_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while (event := queue.pop()) is not None:
            popped.append(event.time)
        assert popped == sorted(times)


class TestResourceProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100,
                              allow_nan=False), min_size=1, max_size=20),
           st.floats(min_value=0.1, max_value=50, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_ledger_conservation(self, unit_list, capacity):
        """Total accounted units == total requested; busy time = sum/cap."""
        sim = Simulator(seed=1)
        resource = Resource(sim, "r", ResourceKind.CPU, capacity)

        def worker(units):
            yield resource.use(units)

        for units in unit_list:
            sim.spawn(worker(units))
        sim.run()
        assert resource.total_units == sum(unit_list)
        assert resource.busy_time * capacity == \
            sum(unit_list) or abs(
                resource.busy_time * capacity - sum(unit_list)) < 1e-6
        # single server: finish time >= busy time
        assert sim.now >= resource.busy_time - 1e-9


class TestCostModelProperties:
    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_estimate_scaling_preserves_verbatim(self, factor):
        model = CostModel().with_estimates_scaled(factor)
        base = CostModel()
        assert model.request_cost("A") == base.request_cost("A")
        assert model.infer_cost("B") == base.infer_cost("B")
        assert model.cross_cost() == base.cross_cost()
        assert model.store_cost().cpu == base.store_cost().cpu * factor

    @given(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    def test_size_identities_hold_for_any_scale(self, factor):
        from repro.core.costs import TaskCost, TaskKind

        model = CostModel().with_override(
            TaskKind.REQUEST, "A", TaskCost(cpu=10, net=5 * factor))
        assert model.poll_request_size + model.poll_response_size == \
            pytest_approx(model.request_cost("A").net)


def pytest_approx(value):
    import pytest

    return pytest.approx(value)


class TestTimeSeriesProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_percentile_bounds(self, values):
        series = TimeSeries("s")
        for index, value in enumerate(values):
            series.record(float(index), value)
        assert series.percentile(0) == min(values)
        assert series.percentile(100) == max(values)
        median = series.percentile(50)
        assert min(values) <= median <= max(values)


class TestRngProperties:
    @given(st.integers(), st.text(min_size=1, max_size=20))
    def test_derive_seed_deterministic_and_64bit(self, seed, name):
        first = derive_seed(seed, name)
        assert first == derive_seed(seed, name)
        assert 0 <= first < 2 ** 64


class TestTableProperties:
    @given(st.lists(
        st.tuples(
            st.integers(),
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N", "P", "Zs")),
                max_size=8,
            ),
        ),
        max_size=10,
    ))
    def test_format_table_line_count(self, rows):
        text = format_table(("n", "s"), rows, title="t")
        assert len(text.splitlines()) == 3 + len(rows)
