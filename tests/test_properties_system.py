"""Property-based tests on system-level invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.ontology import ANALYSIS_JOB, DATA_READY
from repro.core.records import ManagementRecord, Sample
from repro.network.addressing import Address
from repro.network.protocols import HTTP, SMTP
from repro.network.topology import Network
from repro.network.transport import Message, Transport
from repro.rules.conditions import Pattern, Var
from repro.rules.facts import Fact
from repro.simkernel.simulator import Simulator


class TestTransportConservation:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_nic_charges_match_carried_units(self, sizes):
        """Each delivered unit is charged exactly once per endpoint."""
        sim = Simulator(seed=1)
        network = Network(sim)
        sender = network.add_host("s", "site1", net_capacity=1000.0)
        receiver = network.add_host("r", "site1", net_capacity=1000.0)
        receiver.bind("in", lambda message: None)
        transport = Transport(network)
        for size in sizes:
            transport.send(Message(
                Address("s", "x"), Address("r", "in"), None, size))
        sim.run(until=10000)
        total = sum(sizes)
        assert transport.messages_delivered == len(sizes)
        assert abs(sender.nic.total_units - total) < 1e-6
        assert abs(receiver.nic.total_units - total) < 1e-6
        assert abs(transport.units_carried - total) < 1e-6


class TestProtocolMonotonicity:
    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_smtp_never_cheaper_than_http(self, payload):
        assert SMTP.size(payload) >= HTTP.size(payload)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
           st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_size_monotone_in_payload(self, a, b):
        low, high = sorted((a, b))
        assert HTTP.size(low) <= HTTP.size(high)


class TestRecordProperties:
    values = st.one_of(st.integers(-1000, 10**9),
                       st.floats(min_value=0, max_value=1e9,
                                 allow_nan=False))

    @given(st.lists(st.tuples(
        st.sampled_from(["cpu_load", "mem_available", "proc_name",
                         "if_in_octets", "disk_total"]),
        values,
    ), max_size=10))
    def test_parse_is_idempotent_and_shrinking(self, metric_values):
        samples = [
            Sample("d", "s", "performance", metric, value, 1.0)
            for metric, value in metric_values
        ]
        record = ManagementRecord(
            "d", "s", "A", "performance", samples, 1.0, size_units=4.5)
        parsed_once = record.parse(1.5)
        parsed_twice = parsed_once.parse(1.5)
        assert len(parsed_twice) == len(parsed_once) <= len(record)
        assert parsed_once.metrics() == parsed_twice.metrics()
        assert parsed_once.size_units <= record.size_units

    @given(st.lists(st.tuples(
        st.sampled_from(["cpu_load", "disk_free"]), values), max_size=8))
    def test_to_facts_preserves_every_sample(self, metric_values):
        samples = [
            Sample("d", "s", "performance", metric, value, 2.0)
            for metric, value in metric_values
        ]
        record = ManagementRecord(
            "d", "s", "A", "performance", samples, 2.0, size_units=4.5)
        facts = record.to_facts()
        assert len(facts) == len(samples)
        assert all(fact["device"] == "d" for fact in facts)


class TestOntologyProperties:
    @given(
        st.text(min_size=1, max_size=10),
        st.integers(min_value=0, max_value=10**6),
        st.lists(st.text(max_size=5), max_size=5),
    )
    def test_data_ready_round_trip(self, dataset, count, clusters):
        content = DATA_READY.make(
            dataset=dataset, record_count=count, clusters=clusters,
            storage_host="h",
        )
        # validation of its own output must succeed
        assert DATA_READY.validate(dict(content)) == content

    @given(st.integers(min_value=1, max_value=3))
    def test_analysis_job_levels(self, level):
        content = ANALYSIS_JOB.make(
            job_id="j", dataset="d", cluster="c", record_count=1,
            level=level, storage_host="h",
        )
        assert content["level"] == level


class TestPatternJoinProperties:
    @given(st.lists(st.sampled_from(["d1", "d2", "d3"]), min_size=0,
                    max_size=8))
    def test_join_count_equals_equal_device_pairs(self, devices):
        """A two-pattern join over (a, b) yields exactly the matching
        cross-product."""
        from repro.rules.engine import InferenceEngine, Rule
        from repro.rules.facts import WorkingMemory

        memory = WorkingMemory()
        a_devices = devices[: len(devices) // 2]
        b_devices = devices[len(devices) // 2:]
        for index, device in enumerate(a_devices):
            memory.assert_new("a", device=device, index=index)
        for index, device in enumerate(b_devices):
            memory.assert_new("b", device=device, index=index)
        hits = []
        rule = Rule("join", [
            Pattern("a", device=Var("d")),
            Pattern("b", device=Var("d")),
        ], lambda context: hits.append(context["d"]))
        InferenceEngine(memory, [rule]).run()
        expected = sum(
            1 for da in a_devices for db in b_devices if da == db
        )
        assert len(hits) == expected


class TestFactKeyProperties:
    attr_values = st.one_of(
        st.integers(-100, 100), st.text(max_size=6),
        st.lists(st.integers(0, 5), max_size=3),
    )

    @given(st.dictionaries(st.sampled_from("abcd"), attr_values, max_size=4))
    def test_content_key_equality_matches_same_content(self, attrs):
        first = Fact("t", **attrs)
        second = Fact("t", **attrs)
        assert first.content_key() == second.content_key()
        assert first.same_content(second)

    @given(
        st.dictionaries(st.sampled_from("abcd"), attr_values, max_size=4),
        st.dictionaries(st.sampled_from("abcd"), attr_values, max_size=4),
    )
    def test_key_collision_implies_same_content(self, attrs_a, attrs_b):
        first = Fact("t", **attrs_a)
        second = Fact("t", **attrs_b)
        if first.content_key() == second.content_key():
            assert first.same_content(second)
