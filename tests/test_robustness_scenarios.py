"""Chaos-scenario matrix: one X7-style outage, every config cell.

The same storage-host outage (the ship destination dies at t=2 for 30s,
or forever) runs across ``(reliability on/off) x (telemetry on/off) x
(heal/no-heal)``, and each cell must uphold exactly the invariant tier
its configuration buys -- no more, no less:

* **tier 0** (no reliability): bookkeeping sanity only -- records lost
  in the outage vanish silently (``classified <= shipped``).
* **tier 1** (reliable channel): no *silent* loss -- every shipped
  record is classified or dead-lettered with accounting
  (``classified + dead >= shipped``), healed or not.
* **tier 2** (reliability + redelivery + heal): heal-complete --
  the outage (30s) outlasts the retransmission ladder (~15s), so only
  the redelivery scheduler closes the gap: ``classified == shipped``,
  zero permanently-dead envelopes.

Telemetry rides along passively in half the cells: span chains must
never dangle from unrecorded parents, and in the tier-2 cell every
shipped batch's chain must be *complete* -- redelivered, not terminated.

A fourth cell family exercises the federation mesh (ISSUE 8): a 4-site
mesh loses one site mid-run and heals, and must uphold the tier-2
heal-complete contract *globally* -- plus mesh-specific invariants
(detection within the heartbeat timeout, exactly-once forwarding).
"""

import json

import pytest

from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.network.topology import LinkSpec
from repro.workloads.faults import FaultEvent, FaultPlan, apply_fault_plan
from repro.workloads.scenarios import (
    TIER_DETECTION_SURVIVES,
    TIER_HEAL_COMPLETE,
    TIER_NO_SILENT_LOSS,
    TIER_SILENT_LOSS,
    Scenario,
    cascade_scenario,
    flash_crowd_scenario,
    rolling_upgrade_scenario,
    split_brain_scenario,
)

OUTAGE_AT = 2.0
OUTAGE_LEN = 30.0     # > the ~15s retransmission ladder below
GIVE_UP_AFTER = 60.0  # no-heal cells settle into "gave-up", not "parked"
HORIZON = 400.0


def _build(reliability, telemetry, slos=(), heartbeat_interval=None):
    channel = False
    if reliability:
        channel = {
            # ~15s ladder: 1 + 2 + 4 + 8 -- defeated by the 30s outage.
            "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
            "redelivery": True, "redelivery_interval": 2.0,
            "redelivery_max_interval": 8.0,
            "redelivery_give_up_after": GIVE_UP_AFTER,
        }
    spec = GridTopologySpec(
        devices=[
            DeviceSpec("dev1", "server", "field"),
            DeviceSpec("dev2", "router", "field"),
            DeviceSpec("dev3", "server", "field"),
        ],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf1", "mgmt"), HostSpec("inf2", "mgmt")],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=11,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=40.0,
        reliability=channel,
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        telemetry=telemetry,
        slos=slos,
        heartbeat_interval=heartbeat_interval,
    )
    return GridManagementSystem(spec)


def _dead_letter_records(channel):
    count = 0
    for dead in channel.dead_letters:
        acl = dead.message.payload
        if getattr(acl, "ontology", None) == "collected-batch":
            count += len(acl.content["records"])
    return count


def _run_cell(reliability, telemetry, heal):
    system = _build(reliability, telemetry)
    system.collectors[0].poll_retries = 8
    apply_fault_plan(system, FaultPlan([
        FaultEvent(OUTAGE_AT, FaultEvent.HOST_DOWN, "stor",
                   clear_after=OUTAGE_LEN if heal else None),
    ]))
    system.assign_goals(system.make_paper_goals(polls_per_type=4))
    system.sim.run(until=HORIZON)
    return system


@pytest.mark.parametrize("telemetry", [False, True])
@pytest.mark.parametrize("heal", [False, True])
class TestTier0NoReliability:
    def test_bookkeeping_only(self, telemetry, heal):
        system = _run_cell(False, telemetry, heal)
        assert system.reliable_channel is None
        shipped = system.collectors[0].records_shipped
        classified = system.classifier.records_classified
        assert shipped > 0
        # Records shipped into the outage vanish without a trace: the
        # only guarantee is that nothing is double-counted.
        assert classified <= shipped
        # The outage was real: fire-and-forget lost records silently.
        assert classified < shipped
        if telemetry:
            assert system.telemetry.recorder.orphan_spans() == []
        else:
            assert system.telemetry is None


@pytest.mark.parametrize("telemetry", [False, True])
class TestTier1ReliableNoHeal:
    def test_no_silent_loss(self, telemetry):
        system = _run_cell(True, telemetry, heal=False)
        channel = system.reliable_channel
        shipped = system.collectors[0].records_shipped
        classified = system.classifier.records_classified
        dead = _dead_letter_records(channel)
        assert shipped > 0
        # The destination never heals: envelopes exhaust, park, and the
        # delivery budget expires -- all accounted, nothing silent.
        assert channel.dead_letters
        assert channel.redelivery_gave_up > 0
        assert channel.parked_count() == 0  # budget drained the lot
        assert classified + dead >= shipped
        assert classified < shipped  # the loss is real, just not silent
        if telemetry:
            recorder = system.telemetry.recorder
            assert recorder.orphan_spans() == []
            # Gave-up chains terminate with an explicit dead-letter span.
            ships = recorder.find(name="ship")
            assert any(s.status == "dead-letter" for s in ships)
        else:
            assert system.telemetry is None


@pytest.mark.parametrize("telemetry", [False, True])
class TestTier2RedeliveryHeal:
    def test_heal_complete(self, telemetry):
        system = _run_cell(True, telemetry, heal=True)
        channel = system.reliable_channel
        shipped = system.collectors[0].records_shipped
        classified = system.classifier.records_classified
        assert shipped > 0
        # The outage outlasted the retransmission ladder...
        assert channel.dead_letters
        # ...so only redelivery can explain exact completeness.
        assert channel.redelivered > 0
        assert channel.redelivery_gave_up == 0
        assert channel.parked_count() == 0
        assert channel.pending_count() == 0
        assert not channel.permanently_dead()
        assert classified == shipped
        # The pipeline finished end to end after the heal.
        assert system.classifier._open_dataset is None
        assert system.root.datasets
        assert all(s.finished for s in system.root.datasets.values())
        assert len(system.interface.reports) >= 1
        if telemetry:
            recorder = system.telemetry.recorder
            assert recorder.orphan_spans() == []
            # Every redelivered chain re-opened and completed: no ship
            # span terminates in a dead-letter status...
            ships = recorder.find(name="ship")
            assert ships
            assert all(s.status != "dead-letter" for s in ships)
            assert recorder.find(name="redeliver")
            # ...and the end-to-end audit agrees.
            pipeline = system.telemetry.pipeline_report()
            assert pipeline["incomplete"] == []
            assert pipeline["orphans"] == []
            assert pipeline["complete"] == pipeline["batches"]
        else:
            assert system.telemetry is None


MESH_HEARTBEAT = 1.0
MESH_TIMEOUT = 4.0 * MESH_HEARTBEAT
PARTITION_AT = 15.0
PARTITION_LEN = 25.0


@pytest.mark.parametrize("telemetry", [False, True])
class TestMeshPartitionHeal:
    """4-site federation mesh, one site severed mid-run then healed."""

    def _run_cell(self, telemetry):
        from repro.core.federation import (
            MESH, FederatedManagementSystem, FederatedTopologySpec, SiteSpec)
        from repro.workloads.faults import site_partition_plan

        spec = FederatedTopologySpec(
            sites=[
                SiteSpec.simple("site%d" % (index + 1), device_count=2,
                                analyzer_count=1)
                for index in range(4)
            ],
            mode=MESH,
            seed=11,
            dataset_threshold=6,
            heartbeat_interval=MESH_HEARTBEAT,
            forward_threshold=1,
            federation_reliability={
                "ack_timeout": 1.0, "backoff": 2.0, "max_attempts": 4,
                "redelivery": True, "redelivery_interval": 2.0,
                "redelivery_max_interval": 8.0,
            },
            wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
            telemetry=telemetry,
        )
        system = FederatedManagementSystem(spec)
        apply_fault_plan(system, site_partition_plan(
            "site4", partition_at=PARTITION_AT, heal_after=PARTITION_LEN))
        goals = system.make_site_goals(polls_per_type=4)
        goals["site1"] = goals["site1"] * 3  # saturate site1 -> forwarding
        system.assign_site_goals(goals)
        system.sim.run(until=HORIZON)
        return system

    def test_heal_complete_with_mesh_invariants(self, telemetry):
        system = self._run_cell(telemetry)
        channel = system.reliable_channel

        # -- tier-2 contract, held globally across all four sites --------
        shipped = system.records_shipped()
        classified = system.records_classified()
        assert shipped > 0
        assert classified == shipped
        assert channel.parked_count() == 0
        assert channel.pending_count() == 0
        assert not channel.permanently_dead()
        for runtime in system.sites.values():
            assert runtime.root.datasets
            assert all(state.finished
                       for state in runtime.root.datasets.values())

        # -- every surviving site detected the cut within the timeout ----
        for site_name, runtime in system.sites.items():
            if site_name == "site4":
                continue
            declared = [at for peer, at in runtime.gateway.partitions
                        if peer == "site4"]
            assert declared
            assert declared[0] <= PARTITION_AT + MESH_TIMEOUT * 1.25

        # -- and reconverged after the heal -------------------------------
        for states in system.link_state_report().values():
            assert set(states.values()) == {"up"}
        report = system.forwarding_report()
        assert report["partitions_declared"] == 6  # 3 observers + 3 from site4
        assert report["heals_declared"] == 6

        # -- exactly-once forwarding accounting ---------------------------
        assert report["jobs_forwarded"] > 0
        assert report["results_delivered"] + report["forwards_expired"] == \
            report["jobs_forwarded"]
        assert report["jobs_accepted"] == report["results_returned"]
        assert report["duplicate_results"] == 0

        # -- degradation was visible and then cleared ---------------------
        interface = system.sites["site1"].interface
        kinds = {finding.kind for finding in interface.all_findings()}
        assert "site-partition" in kinds
        assert "site-partition-heal" in kinds
        assert interface.partitioned_sites() == []
        assert interface.offline_devices() == []

        if telemetry:
            recorder = system.telemetry.recorder
            assert recorder.orphan_spans() == []
            assert recorder.find(name="forward")
            pipeline = system.telemetry.pipeline_report()
            assert pipeline["incomplete"] == []
            assert pipeline["orphans"] == []
            assert pipeline["complete"] == pipeline["batches"]
        else:
            assert system.telemetry is None


# -- the compound-failure scenario catalog (ISSUE 10) ---------------------
#
# One cell per catalog scenario; each asserts exactly the invariant tier
# the scenario declares, through a shared tier-assertion ladder.

GOSSIP_HEARTBEAT_TIMEOUT = 8.0  # 4 x the catalog's heartbeat_interval


def _build_scenario(scenario, analysis_hosts=2, horizon=HORIZON):
    """Build, faultify and run a catalog scenario on the matrix topology.

    The scenario is *declarative*: its ``spec_overrides`` configure the
    spec (reliability ladder, heartbeats, gossip), its ``fault_plan``
    schedules the failures, and ``build_goals`` generates the (possibly
    traffic-shaped) workload.
    """
    spec = GridTopologySpec(
        devices=scenario.devices,
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf%d" % (index + 1), "mgmt")
                        for index in range(analysis_hosts)],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=11,
        dataset_threshold=4,
        policy="round-robin",
        job_timeout=40.0,
        wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        **scenario.spec_overrides
    )
    system = GridManagementSystem(spec)
    system.collectors[0].poll_retries = 8
    if scenario.fault_plan is not None:
        apply_fault_plan(system, scenario.fault_plan)
    system.assign_goals(scenario.build_goals(seed=11))
    system.sim.run(until=horizon)
    return system


def _assert_tier(system, tier):
    """The invariant ladder: each tier implies everything below it."""
    shipped = system.collectors[0].records_shipped
    classified = system.classifier.records_classified
    assert shipped > 0
    if tier == TIER_SILENT_LOSS:
        assert classified <= shipped  # bookkeeping sanity only
        return
    channel = system.reliable_channel
    dead = _dead_letter_records(channel)
    assert classified + dead >= shipped  # no silent loss
    if tier == TIER_NO_SILENT_LOSS:
        return
    # heal-complete: the faults cleared and redelivery drained the lot.
    assert classified == shipped
    assert channel.parked_count() == 0
    assert channel.pending_count() == 0
    assert not channel.permanently_dead()
    assert system.root.datasets
    assert all(state.finished for state in system.root.datasets.values())
    if tier == TIER_HEAL_COMPLETE:
        return
    # detection-survives-root-outage: the gossip mesh converged on the
    # root's death while the root was unreachable (asserted in detail by
    # the split-brain cell).
    assert tier == TIER_DETECTION_SURVIVES
    assert system.gossip is not None
    assert system.gossip.detection_times()


class TestSplitBrainCell:
    """Island = root's host + half the analyzer hosts; the severed half
    must keep detecting, elect a stand-in, and reconcile on heal."""

    PARTITION_AT = 15.0
    HEAL_AFTER = 30.0

    def _run(self):
        scenario = split_brain_scenario(
            island_hosts=("stor", "inf1", "inf2"),
            partition_at=self.PARTITION_AT, heal_after=self.HEAL_AFTER)
        assert scenario.expected_tier == TIER_DETECTION_SURVIVES
        return _build_scenario(scenario, analysis_hosts=4)

    def test_detection_survives_root_outage(self):
        system = self._run()
        _assert_tier(system, TIER_DETECTION_SURVIVES)
        mesh = system.gossip

        # Severed analyzers (inf3/inf4) converged on the root's death
        # within the heartbeat timeout -- detection survived the outage.
        detection = mesh.detection_times()
        for severed in ("analyzer-3", "analyzer-4"):
            assert severed in detection
            delay = detection[severed] - self.PARTITION_AT
            assert 0.0 < delay <= GOSSIP_HEARTBEAT_TIMEOUT

        # The severed side elected the lexicographically-smallest alive
        # analyzer among themselves as stand-in dispatcher.
        stand_ins = mesh.stand_ins()
        assert stand_ins["analyzer-3"] == "analyzer-3"
        assert stand_ins["analyzer-4"] == "analyzer-3"

        # After the heal, every view that confirmed the root saw its
        # refutation (fresh incarnation) and recovered.
        recoveries = mesh.recovery_times()
        assert set(detection) <= set(recoveries)
        assert all(at >= self.PARTITION_AT + self.HEAL_AFTER
                   for at in recoveries.values())

        # The root, meanwhile, evicted the severed containers via the
        # heartbeat detector and welcomed them back -- both failure
        # detectors ran through the same outage.
        assert system.root.containers_evicted >= 1
        assert system.root.containers_recovered >= 1

    def test_island_half_keeps_root_alive(self):
        system = self._run()
        # In-island analyzers (inf1/inf2) heard the root throughout; any
        # post-heal infection by the severed half's stale suspicion must
        # have been refuted -- nobody ends with the root confirmed dead.
        from repro.core.gossip import CONFIRMED

        for component in system.gossip.members.values():
            assert component.view.status("pg-root") != CONFIRMED


class TestCascadeCell:
    def test_rolling_overlapping_failures_heal_complete(self):
        scenario = cascade_scenario(hosts=("inf1", "inf2"), start_at=10.0,
                                    stagger=6.0, down_duration=15.0)
        assert scenario.expected_tier == TIER_HEAL_COMPLETE
        # The cascade is genuinely overlapping: host 2 fails before
        # host 1 recovers.
        events = list(scenario.fault_plan)
        assert events[1].at < events[0].at + events[0].clear_after
        system = _build_scenario(scenario)
        _assert_tier(system, TIER_HEAL_COMPLETE)
        # The overlap window (both hosts dark) forced real evictions and
        # re-dispatch; recovery brought every container back.
        assert system.root.containers_evicted >= 1
        assert system.root.containers_recovered >= 1
        assert len(system.interface.reports) >= 1


class TestFlashCrowdCell:
    def test_spike_absorbed_without_loss(self):
        scenario = flash_crowd_scenario(spike_multiplier=10.0,
                                        requests_per_type=4)
        assert scenario.expected_tier == TIER_HEAL_COMPLETE
        # The crowd genuinely backlogs the shared storage-host pipeline;
        # the horizon gives the grid time to absorb and drain it.
        system = _build_scenario(scenario, horizon=800.0)
        _assert_tier(system, TIER_HEAL_COMPLETE)
        # The crowd was real: the spiked workload shipped far more than
        # the baseline mix alone.
        assert system.collectors[0].records_shipped > \
            scenario.mix.total * 2
        assert len(system.interface.reports) >= 1

    def test_multiplier_outside_catalog_band_rejected(self):
        with pytest.raises(ValueError):
            flash_crowd_scenario(spike_multiplier=2.0)
        with pytest.raises(ValueError):
            flash_crowd_scenario(spike_multiplier=500.0)


class TestRollingUpgradeCell:
    def test_staggered_bounces_heal_complete_without_evictions(self):
        scenario = rolling_upgrade_scenario(
            hosts=("inf1", "inf2"), start_at=10.0,
            restart_duration=5.0, wave_gap=12.0)
        assert scenario.expected_tier == TIER_HEAL_COMPLETE
        # The waves never overlap: each restart ends before the next
        # begins -- the validator would reject same-host overlap anyway.
        events = list(scenario.fault_plan)
        for first, second in zip(events, events[1:]):
            assert first.at + first.clear_after <= second.at
        system = _build_scenario(scenario)
        _assert_tier(system, TIER_HEAL_COMPLETE)
        # Each bounce (5s) stays inside the heartbeat timeout (8s): a
        # disciplined upgrade never trips eviction, unlike the cascade.
        assert system.root.containers_evicted == 0


class TestScenarioComposition:
    """flash_crowd x link_loss_burst: composition validates, runs, and is
    deterministic (double-run byte-identical accounting)."""

    def _composed(self):
        crowd = flash_crowd_scenario(spike_multiplier=10.0,
                                     requests_per_type=4)
        burst = Scenario(
            "link_loss_burst",
            devices=crowd.devices,
            mix=crowd.mix,
            description="20% WAN loss for 15s",
            fault_plan=FaultPlan([
                FaultEvent(20.0, FaultEvent.LINK_LOSS_BURST, "wan",
                           loss_rate=0.2, clear_after=15.0),
            ]),
            expected_tier=TIER_NO_SILENT_LOSS,
        )
        return crowd.compose(burst)

    def _metrics(self, system):
        channel = system.reliable_channel
        return {
            "shipped": system.collectors[0].records_shipped,
            "classified": system.classifier.records_classified,
            "retransmits": channel.retransmits,
            "redelivered": channel.redelivered,
            "reports": len(system.interface.reports),
            "jobs_dispatched": system.root.jobs_dispatched,
        }

    def test_composition_validates_and_downgrades_tier(self):
        composed = self._composed()
        assert composed.name == "flash_crowd+link_loss_burst"
        # The weaker tier wins: extra failures can only lower the bar.
        assert composed.expected_tier == TIER_NO_SILENT_LOSS
        assert len(list(composed.fault_plan)) == 1
        assert composed.traffic is not None  # workload side preserved

    def test_conflicting_spec_overrides_rejected(self):
        crowd = flash_crowd_scenario(spike_multiplier=10.0)
        other = Scenario(
            "other", devices=crowd.devices, mix=crowd.mix,
            spec_overrides={"reliability": False})
        with pytest.raises(ValueError):
            crowd.compose(other)

    def test_composed_run_upholds_tier_and_is_deterministic(self):
        first = _build_scenario(self._composed(), horizon=800.0)
        _assert_tier(first, TIER_NO_SILENT_LOSS)
        # The burst actually bit: the channel had to retransmit.
        assert first.reliable_channel.retransmits > 0
        second = _build_scenario(self._composed(), horizon=800.0)
        assert json.dumps(self._metrics(first), sort_keys=True) == \
            json.dumps(self._metrics(second), sort_keys=True)


class TestScorecardFlip:
    """A mid-run analysis-host kill flips that container's scorecard RED
    on the health layer; the heal flips it back to GREEN.

    Note: ``host_down`` with ``clear_after`` models the reboot --
    ``container_down`` is permanent by design (killed containers never
    resurrect) and so cannot exercise the red -> green edge.
    """

    KILL_AT = 50.0
    KILL_LEN = 60.0

    def _card_for_host(self, system, host_name):
        cards = system.health.scorecards()["containers"]
        matches = [card for card in cards.values()
                   if card["host"] == host_name]
        assert len(matches) == 1
        return matches[0]

    def test_analysis_kill_flips_red_then_heal_flips_green(self):
        from repro.core.health import GREEN, RED, SLOSpec

        slo = SLOSpec("ship", p=90.0, target=40.0, window=120.0,
                      fast_window=30.0)
        system = _build(True, telemetry=True, slos=[slo],
                        heartbeat_interval=2.0)
        system.collectors[0].poll_retries = 8
        apply_fault_plan(system, FaultPlan([
            FaultEvent(self.KILL_AT, FaultEvent.HOST_DOWN, "inf1",
                       clear_after=self.KILL_LEN),
        ]))
        system.assign_goals(system.make_paper_goals(polls_per_type=4))

        # Before the kill: everything green.
        system.sim.run(until=self.KILL_AT - 1.0)
        assert self._card_for_host(system, "inf1")["state"] == GREEN

        # Mid-outage: the dead host's container shows red with at least
        # one structural reason (host down / evicted / stale beacons).
        system.sim.run(until=self.KILL_AT + self.KILL_LEN / 2.0)
        card = self._card_for_host(system, "inf1")
        assert card["state"] == RED
        assert card["reasons"]

        # After the reboot and recovery window: green again, and the
        # eviction bookkeeping confirms a true round trip.
        system.sim.run(until=HORIZON)
        card = self._card_for_host(system, "inf1")
        assert card["state"] == GREEN, card["reasons"]
        root = system.root
        assert root.containers_evicted >= 1
        assert root.containers_recovered >= 1
