"""Tests for declarative rule specs and their ACL transmission path."""

import pytest

from repro.rules.catalog import RuleSpec, factory_names, register_factory
from repro.rules.engine import InferenceEngine
from repro.rules.facts import WorkingMemory


class TestRuleSpec:
    def test_build_with_params(self):
        rule = RuleSpec("high-cpu", {"threshold": 50.0}).build()
        memory = WorkingMemory()
        memory.assert_new("sample", device="d", site="s",
                          group="performance", metric="cpu_load",
                          value=60.0, time=1.0)
        InferenceEngine(memory, [rule]).run()
        assert memory.count("problem") == 1

    def test_rename_allows_variant(self):
        spec = RuleSpec("high-cpu", {"threshold": 50.0},
                        rename="high-cpu-strict")
        rule = spec.build()
        assert rule.name == "high-cpu-strict"

    def test_dict_round_trip(self):
        spec = RuleSpec("low-disk", {"threshold_kb": 1000}, rename="ld2")
        rebuilt = RuleSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.build().name == "ld2"

    def test_unknown_factory_rejected(self):
        with pytest.raises(KeyError):
            RuleSpec("quantum-divination")

    def test_malformed_dict_rejected(self):
        with pytest.raises(ValueError):
            RuleSpec.from_dict({"no": "factory"})
        with pytest.raises(ValueError):
            RuleSpec.from_dict("not a dict")

    def test_catalog_covers_stock_rules(self):
        names = factory_names()
        assert "high-cpu" in names
        assert "multi-site-overload" in names
        assert len(names) == 15

    def test_register_custom_factory(self):
        from repro.rules.conditions import Pattern
        from repro.rules.engine import Rule

        def custom_rule():
            return Rule("custom-x", [Pattern("anything")], lambda c: None)

        register_factory("custom-x-test", custom_rule)
        try:
            assert RuleSpec("custom-x-test").build().name == "custom-x"
            with pytest.raises(ValueError):
                register_factory("custom-x-test", custom_rule)
        finally:
            from repro.rules import catalog
            del catalog._FACTORIES["custom-x-test"]


class TestAclTransmission:
    def _system(self):
        from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
        from repro.baselines.centralized import default_devices

        spec = GridTopologySpec(
            devices=default_devices(1),
            collector_hosts=[HostSpec("col1")],
            analysis_hosts=[HostSpec("inf1"), HostSpec("inf2")],
            storage_host=HostSpec("stor"),
            interface_host=HostSpec("iface"),
            seed=8,
            dataset_threshold=3,
        )
        return GridManagementSystem(spec)

    def test_spec_reaches_all_analyzers(self):
        system = self._system()
        spec = RuleSpec("high-cpu", {"threshold": 10.0},
                        rename="high-cpu-sensitive")
        system.interface.submit_rule_spec(
            spec, [analyzer.name for analyzer in system.analyzers])
        system.run(until=5.0)
        for analyzer in system.analyzers:
            assert "high-cpu-sensitive" in analyzer.knowledge_base
            assert "high-cpu-sensitive" in analyzer.knowledge_base.learned

    def test_duplicate_spec_refused_not_crashing(self):
        system = self._system()
        spec = RuleSpec("high-cpu", {"threshold": 10.0})  # name collides
        system.interface.submit_rule_spec(
            spec, [system.analyzers[0].name])
        system.run(until=5.0)
        # the stock KB already has "high-cpu": learn refused, nothing broke
        assert "high-cpu" not in system.analyzers[0].knowledge_base.learned

    def test_malformed_spec_answered_with_failure(self):
        from repro.agents.acl import ACLMessage, Performative

        system = self._system()
        system.interface.send(ACLMessage(
            Performative.INFORM,
            sender=system.interface.name,
            receiver=system.analyzers[0].name,
            content={"factory": "nonexistent"},
            ontology="learn-rule",
        ))
        system.run(until=5.0)
        # analyzer survives and learned nothing
        assert system.analyzers[0].knowledge_base.learned == []

    def test_transmitted_rule_affects_analysis(self):
        system = self._system()
        spec = RuleSpec("high-cpu", {"threshold": 1.0},
                        rename="cpu-anything")
        system.interface.submit_rule_spec(
            spec, [analyzer.name for analyzer in system.analyzers])
        system.run(until=2.0)
        system.assign_goals(system.make_paper_goals(polls_per_type=1))
        assert system.run_until_records(3, timeout=2000)
        kinds = {finding.kind for finding in system.interface.all_findings()}
        assert "high-cpu" in kinds  # the renamed rule still emits high-cpu
