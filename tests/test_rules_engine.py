"""Unit tests for the inference engine and knowledge bases."""

import pytest

from repro.rules.conditions import GT, Pattern, Var
from repro.rules.engine import InferenceEngine, Rule
from repro.rules.facts import WorkingMemory
from repro.rules.rulebase import KnowledgeBase
from repro.rules import stdlib


def _mark(tag):
    def action(context):
        context.assert_fact("marker", tag=tag, device=context.get("d", ""))
    return action


class TestEngine:
    def test_single_pattern_fires_per_fact(self):
        memory = WorkingMemory()
        memory.assert_new("sample", device="d1", value=95)
        memory.assert_new("sample", device="d2", value=10)
        rule = Rule("hot", [Pattern("sample", value=GT(90), device=Var("d"))],
                    _mark("hot"))
        engine = InferenceEngine(memory, [rule])
        assert engine.run() == 1
        markers = memory.facts("marker")
        assert len(markers) == 1
        assert markers[0]["device"] == "d1"

    def test_join_across_patterns(self):
        memory = WorkingMemory()
        memory.assert_new("a", device="d1")
        memory.assert_new("b", device="d1")
        memory.assert_new("b", device="d2")
        rule = Rule("join", [
            Pattern("a", device=Var("d")),
            Pattern("b", device=Var("d")),
        ], _mark("joined"))
        engine = InferenceEngine(memory, [rule])
        assert engine.run() == 1

    def test_refractoriness_prevents_refire(self):
        memory = WorkingMemory()
        memory.assert_new("sample", device="d1", value=95)
        rule = Rule("hot", [Pattern("sample", value=GT(90))], _mark("hot"))
        engine = InferenceEngine(memory, [rule])
        assert engine.run() == 1
        assert engine.run() == 0

    def test_chaining_derived_facts_trigger_rules(self):
        memory = WorkingMemory()
        memory.assert_new("sample", device="d1", value=95)

        def derive(context):
            context.assert_fact("alarm", device="d1")

        rules = [
            Rule("first", [Pattern("sample", value=GT(90))], derive),
            Rule("second", [Pattern("alarm", device=Var("d"))], _mark("esc")),
        ]
        engine = InferenceEngine(memory, rules)
        fired = engine.run()
        assert fired == 2
        assert memory.count("marker") == 1

    def test_salience_orders_firing(self):
        memory = WorkingMemory()
        memory.assert_new("sample", x=1)
        order = []
        low = Rule("low", [Pattern("sample")],
                   lambda c: order.append("low"), salience=0)
        high = Rule("high", [Pattern("sample")],
                    lambda c: order.append("high"), salience=10)
        engine = InferenceEngine(memory, [low, high])
        engine.run()
        assert order == ["high", "low"]

    def test_retraction_inside_action(self):
        memory = WorkingMemory()
        fact = memory.assert_new("sample", x=1)

        def consume(context):
            context.retract(fact)

        rule = Rule("eat", [Pattern("sample")], consume)
        engine = InferenceEngine(memory, [rule])
        engine.run()
        assert memory.count("sample") == 0

    def test_one_fact_cannot_fill_two_slots(self):
        memory = WorkingMemory()
        memory.assert_new("problem", kind="high-cpu", device="d1")
        rule = Rule("pair", [
            Pattern("problem", kind="high-cpu", bind="p1"),
            Pattern("problem", kind="high-cpu", bind="p2"),
        ], _mark("pair"))
        engine = InferenceEngine(memory, [rule])
        assert engine.run() == 0

    def test_nonquiescence_guard(self):
        memory = WorkingMemory()
        memory.assert_new("seed", n=0)
        counter = [0]

        def runaway(context):
            counter[0] += 1
            context.assert_fact("seed", n=counter[0])

        rule = Rule("runaway", [Pattern("seed", n=Var("n"))], runaway)
        engine = InferenceEngine(memory, [rule], max_cycles=10)
        with pytest.raises(RuntimeError):
            engine.run()

    def test_duplicate_rule_names_rejected(self):
        memory = WorkingMemory()
        engine = InferenceEngine(memory, [
            Rule("r", [Pattern("a")], lambda c: None),
        ])
        with pytest.raises(ValueError):
            engine.add_rule(Rule("r", [Pattern("b")], lambda c: None))

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            Rule("empty", [], lambda c: None)
        with pytest.raises(ValueError):
            Rule("bad-level", [Pattern("a")], lambda c: None, level=7)


class TestKnowledgeBase:
    def test_groups_and_levels_filter(self):
        kb = stdlib.standard_knowledge_base()
        perf = kb.rules(groups=("performance",))
        assert all(rule.group == "performance" for rule in perf)
        shallow = kb.rules(max_level=1)
        assert all(rule.level == 1 for rule in shallow)

    def test_learn_tracks_runtime_rules(self):
        kb = KnowledgeBase("kb")
        rule = Rule("learned", [Pattern("a")], lambda c: None)
        kb.learn(rule)
        assert "learned" in kb
        assert kb.learned == ["learned"]
        assert kb.describe()["learned"] == ["learned"]

    def test_duplicate_add_rejected(self):
        kb = KnowledgeBase()
        kb.add(Rule("r", [Pattern("a")], lambda c: None))
        with pytest.raises(ValueError):
            kb.add(Rule("r", [Pattern("b")], lambda c: None))

    def test_remove(self):
        kb = KnowledgeBase()
        kb.add(Rule("r", [Pattern("a")], lambda c: None))
        kb.remove("r")
        assert "r" not in kb
        with pytest.raises(KeyError):
            kb.remove("r")

    def test_merge_skips_duplicates(self):
        kb_a = KnowledgeBase("a")
        kb_b = KnowledgeBase("b")
        kb_a.add(Rule("shared", [Pattern("x")], lambda c: None))
        kb_b.add(Rule("shared", [Pattern("x")], lambda c: None))
        kb_b.add(Rule("unique", [Pattern("y")], lambda c: None))
        skipped = kb_a.merge(kb_b)
        assert skipped == ["shared"]
        assert "unique" in kb_a

    def test_engine_for_builds_filtered_engine(self):
        kb = stdlib.standard_knowledge_base()
        memory = WorkingMemory()
        engine = kb.engine_for(memory, groups=("traffic",))
        assert all(rule.group == "traffic" for rule in engine.rules)


class TestStdlibRules:
    def _memory_with(self, *facts):
        memory = WorkingMemory()
        for fact_type, attrs in facts:
            memory.assert_new(fact_type, **attrs)
        return memory

    def test_high_cpu_detection(self):
        memory = self._memory_with((
            "sample",
            dict(device="d1", site="s", group="performance",
                 metric="cpu_load", value=99.0, time=1.0),
        ))
        engine = InferenceEngine(memory, [stdlib.high_cpu_rule(90)])
        engine.run()
        problems = memory.facts("problem")
        assert len(problems) == 1
        assert problems[0]["kind"] == "high-cpu"
        assert problems[0]["value"] == 99.0

    def test_threshold_not_crossed_no_problem(self):
        memory = self._memory_with((
            "sample",
            dict(device="d1", site="s", group="performance",
                 metric="cpu_load", value=50.0, time=1.0),
        ))
        engine = InferenceEngine(memory, [stdlib.high_cpu_rule(90)])
        engine.run()
        assert memory.count("problem") == 0

    def test_interface_down_detection(self):
        memory = self._memory_with((
            "sample",
            dict(device="r1", site="s", group="traffic",
                 metric="if_oper_status", value=2, instance=3, time=1.0),
        ))
        engine = InferenceEngine(memory, [stdlib.interface_down_rule()])
        engine.run()
        problems = memory.facts("problem")
        assert problems[0]["kind"] == "interface-down"
        assert problems[0]["value"] == 3

    def test_traffic_surge_needs_baseline(self):
        memory = self._memory_with(
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_in_rate", value=100000, time=1.0,
                            instance=1)),
        )
        engine = InferenceEngine(memory, [stdlib.traffic_surge_rule(3.0)])
        engine.run()
        assert memory.count("problem") == 0
        memory.assert_new("baseline", device="r1", metric="if_in_rate",
                          instance=1, mean=1000.0, maximum=2000.0)
        engine.run()
        assert memory.count("problem") == 1

    def test_traffic_surge_below_factor_quiet(self):
        memory = self._memory_with(
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_in_rate", value=2000, time=1.0,
                            instance=1)),
            ("baseline", dict(device="r1", metric="if_in_rate",
                              instance=1, mean=1000.0, maximum=2000.0)),
        )
        engine = InferenceEngine(memory, [stdlib.traffic_surge_rule(3.0)])
        engine.run()
        assert memory.count("problem") == 0

    def test_site_overload_fires_once_per_pair(self):
        memory = self._memory_with(
            ("problem", dict(kind="high-cpu", severity="major", device="d1",
                             site="s", value=95, metric="cpu_load")),
            ("problem", dict(kind="high-cpu", severity="major", device="d2",
                             site="s", value=96, metric="cpu_load")),
        )
        engine = InferenceEngine(memory, [stdlib.site_overload_rule()])
        engine.run()
        incidents = memory.facts("incident")
        assert len(incidents) == 1
        assert incidents[0]["devices"] == ("d1", "d2")

    def test_cascade_failure_requires_distinct_devices(self):
        memory = self._memory_with(
            ("problem", dict(kind="interface-down", severity="critical",
                             device="r1", site="s", value=1,
                             metric="if_oper_status")),
            ("problem", dict(kind="traffic-surge", severity="minor",
                             device="r1", site="s", value=9,
                             metric="if_in_rate")),
        )
        engine = InferenceEngine(memory, [stdlib.cascade_failure_rule()])
        engine.run()
        assert memory.count("incident") == 0

    def test_resource_exhaustion_joins_two_problems(self):
        memory = self._memory_with(
            ("problem", dict(kind="low-disk", severity="major", device="d1",
                             site="s", value=10, metric="disk_free")),
            ("problem", dict(kind="low-memory", severity="minor", device="d1",
                             site="s", value=10, metric="mem_available")),
        )
        engine = InferenceEngine(memory, [stdlib.resource_exhaustion_rule()])
        engine.run()
        assert memory.count("incident") == 1

    def test_standard_kb_inventory(self):
        kb = stdlib.standard_knowledge_base()
        description = kb.describe()
        assert description["rule_count"] == len(kb) == 15
        assert set(description["groups"]) == {
            "performance", "storage", "traffic", "correlation",
        }

    def test_custom_thresholds_respected(self):
        kb = stdlib.standard_knowledge_base(thresholds={"cpu_percent": 10.0})
        memory = self._memory_with((
            "sample",
            dict(device="d1", site="s", group="performance",
                 metric="cpu_load", value=50.0, time=1.0),
        ))
        engine = kb.engine_for(memory, groups=("performance",))
        engine.run()
        assert memory.count("problem") == 1
