"""Unit tests for facts, working memory and the condition DSL."""

import pytest

from repro.rules.conditions import (
    BETWEEN, CONTAINS, EQ, GE, GT, IN, LE, LT, NE, PRED, Pattern, Var,
)
from repro.rules.facts import Fact, WorkingMemory


class TestFact:
    def test_attribute_access(self):
        fact = Fact("sample", device="d1", value=10)
        assert fact["device"] == "d1"
        assert fact.get("missing", "default") == "default"
        assert "value" in fact

    def test_immutable(self):
        fact = Fact("sample", x=1)
        with pytest.raises(AttributeError):
            fact.type = "other"

    def test_same_content_ignores_identity(self):
        assert Fact("a", x=1).same_content(Fact("a", x=1))
        assert not Fact("a", x=1).same_content(Fact("a", x=2))
        assert not Fact("a", x=1).same_content(Fact("b", x=1))

    def test_content_key_handles_unhashable_values(self):
        fact = Fact("a", items=[1, 2], mapping={"k": [3]}, tags={"x"})
        assert isinstance(hash(fact.content_key()), int)

    def test_ids_are_unique(self):
        assert Fact("a").id != Fact("a").id

    def test_empty_type_rejected(self):
        with pytest.raises(ValueError):
            Fact("")


class TestWorkingMemory:
    def test_assert_and_query(self):
        memory = WorkingMemory()
        memory.assert_new("sample", device="d1")
        memory.assert_new("sample", device="d2")
        memory.assert_new("problem", device="d1")
        assert len(memory) == 3
        assert memory.count("sample") == 2
        assert memory.types() == ["problem", "sample"]

    def test_duplicate_content_collapses(self):
        memory = WorkingMemory()
        first = memory.assert_new("sample", device="d1")
        second = memory.assert_new("sample", device="d1")
        assert first is second
        assert len(memory) == 1
        assert memory.assertions == 1

    def test_retract(self):
        memory = WorkingMemory()
        fact = memory.assert_new("sample", device="d1")
        assert memory.retract(fact)
        assert not memory.retract(fact)
        assert len(memory) == 0
        # content can be re-asserted after retraction
        again = memory.assert_new("sample", device="d1")
        assert again is not fact

    def test_retract_type(self):
        memory = WorkingMemory()
        memory.assert_new("sample", device="d1")
        memory.assert_new("sample", device="d2")
        memory.assert_new("problem", device="d1")
        assert memory.retract_type("sample") == 2
        assert memory.count("sample") == 0
        assert memory.count("problem") == 1

    def test_first_with_attribute_filter(self):
        memory = WorkingMemory()
        memory.assert_new("sample", device="d1", value=1)
        memory.assert_new("sample", device="d2", value=2)
        fact = memory.first("sample", device="d2")
        assert fact["value"] == 2
        assert memory.first("sample", device="d9") is None

    def test_clock_stamps_assertions(self):
        times = [5.0]
        memory = WorkingMemory(clock=lambda: times[0])
        fact = memory.assert_new("sample", x=1)
        assert fact.asserted_at == 5.0

    def test_version_increments_on_change(self):
        memory = WorkingMemory()
        v0 = memory.version
        fact = memory.assert_new("a", x=1)
        assert memory.version > v0
        v1 = memory.version
        memory.retract(fact)
        assert memory.version > v1


class TestPredicates:
    @pytest.mark.parametrize("predicate,value,expected", [
        (EQ(5), 5, True), (EQ(5), 6, False),
        (NE(5), 6, True), (NE(5), 5, False),
        (GT(5), 6, True), (GT(5), 5, False), (GT(5), None, False),
        (GE(5), 5, True), (GE(5), 4, False),
        (LT(5), 4, True), (LT(5), 5, False), (LT(5), None, False),
        (LE(5), 5, True), (LE(5), 6, False),
        (BETWEEN(1, 3), 2, True), (BETWEEN(1, 3), 4, False),
        (IN(1, 2, 3), 2, True), (IN(1, 2, 3), 9, False),
        (IN([1, 2]), 1, True),
        (CONTAINS("x"), ["x", "y"], True), (CONTAINS("x"), ["y"], False),
        (CONTAINS("x"), 5, False),
        (PRED(lambda v: v % 2 == 0), 4, True),
        (PRED(lambda v: v % 2 == 0), 5, False),
    ])
    def test_predicate_semantics(self, predicate, value, expected):
        assert predicate.check(value) is expected

    def test_between_bounds_validated(self):
        with pytest.raises(ValueError):
            BETWEEN(3, 1)

    def test_in_with_unhashable_probe(self):
        assert IN(1, 2).check([1]) is False


class TestPattern:
    def test_literal_constraint(self):
        pattern = Pattern("sample", metric="cpu_load")
        assert pattern.match(
            Fact("sample", metric="cpu_load"), {}) is not None
        assert pattern.match(Fact("sample", metric="disk"), {}) is None
        assert pattern.match(Fact("other", metric="cpu_load"), {}) is None

    def test_missing_attribute_fails(self):
        pattern = Pattern("sample", metric="cpu_load")
        assert pattern.match(Fact("sample", value=1), {}) is None

    def test_variable_binding(self):
        pattern = Pattern("sample", device=Var("d"))
        bindings = pattern.match(Fact("sample", device="d1"), {})
        assert bindings == {"d": "d1"}

    def test_variable_consistency_across_bindings(self):
        pattern = Pattern("sample", device=Var("d"))
        assert pattern.match(Fact("sample", device="d1"), {"d": "d1"}) \
            is not None
        assert pattern.match(Fact("sample", device="d2"), {"d": "d1"}) is None

    def test_bind_whole_fact(self):
        pattern = Pattern("sample", bind="f", device="d1")
        fact = Fact("sample", device="d1")
        bindings = pattern.match(fact, {})
        assert bindings["f"] is fact

    def test_input_bindings_not_mutated(self):
        pattern = Pattern("sample", device=Var("d"))
        original = {}
        pattern.match(Fact("sample", device="d1"), original)
        assert original == {}

    def test_predicate_and_var_mix(self):
        pattern = Pattern("sample", value=GT(10), device=Var("d"))
        bindings = pattern.match(Fact("sample", value=50, device="x"), {})
        assert bindings == {"d": "x"}
        assert pattern.match(Fact("sample", value=5, device="x"), {}) is None

    def test_empty_fact_type_rejected(self):
        with pytest.raises(ValueError):
            Pattern("")
