"""Tests for the extended stock rules (silent interface, trends,
multi-site correlation)."""

from repro.rules.engine import InferenceEngine
from repro.rules.facts import WorkingMemory
from repro.rules import stdlib


def _memory_with(*facts):
    memory = WorkingMemory()
    for fact_type, attrs in facts:
        memory.assert_new(fact_type, **attrs)
    return memory


class TestSilentInterface:
    def test_up_but_silent_flagged(self):
        memory = _memory_with(
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_oper_status", value=1, instance=2,
                            time=1.0)),
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_in_rate", value=0.0, instance=2,
                            time=1.0)),
        )
        engine = InferenceEngine(memory, [stdlib.silent_interface_rule()])
        engine.run()
        problems = memory.facts("problem")
        assert len(problems) == 1
        assert problems[0]["kind"] == "silent-interface"
        assert problems[0]["value"] == 2

    def test_down_interface_not_silent(self):
        memory = _memory_with(
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_oper_status", value=2, instance=2,
                            time=1.0)),
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_in_rate", value=0.0, instance=2,
                            time=1.0)),
        )
        engine = InferenceEngine(memory, [stdlib.silent_interface_rule()])
        engine.run()
        assert memory.count("problem") == 0

    def test_instances_must_match(self):
        memory = _memory_with(
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_oper_status", value=1, instance=1,
                            time=1.0)),
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_in_rate", value=0.0, instance=2,
                            time=1.0)),
        )
        engine = InferenceEngine(memory, [stdlib.silent_interface_rule()])
        engine.run()
        assert memory.count("problem") == 0

    def test_busy_interface_not_flagged(self):
        memory = _memory_with(
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_oper_status", value=1, instance=1,
                            time=1.0)),
            ("sample", dict(device="r1", site="s", group="traffic",
                            metric="if_in_rate", value=5000.0, instance=1,
                            time=1.0)),
        )
        engine = InferenceEngine(memory, [stdlib.silent_interface_rule()])
        engine.run()
        assert memory.count("problem") == 0


class TestTrendRules:
    def test_load_trend_fires_above_factor(self):
        memory = _memory_with(
            ("sample", dict(device="d1", site="s", group="performance",
                            metric="load_avg", value=5.0, time=1.0)),
            ("baseline", dict(device="d1", metric="load_avg", mean=1.0,
                              maximum=2.0)),
        )
        engine = InferenceEngine(memory, [stdlib.load_trend_rule(2.0)])
        engine.run()
        assert memory.facts("problem")[0]["kind"] == "load-trend"

    def test_load_trend_quiet_below_factor(self):
        memory = _memory_with(
            ("sample", dict(device="d1", site="s", group="performance",
                            metric="load_avg", value=1.5, time=1.0)),
            ("baseline", dict(device="d1", metric="load_avg", mean=1.0,
                              maximum=2.0)),
        )
        engine = InferenceEngine(memory, [stdlib.load_trend_rule(2.0)])
        engine.run()
        assert memory.count("problem") == 0

    def test_disk_projection_fires_on_sharp_drop(self):
        memory = _memory_with(
            ("sample", dict(device="d1", site="s", group="storage",
                            metric="disk_free", value=600_000.0, time=1.0)),
            ("baseline", dict(device="d1", metric="disk_free",
                              mean=1_000_000.0, maximum=1_100_000.0)),
        )
        engine = InferenceEngine(memory, [stdlib.disk_projection_rule(0.25)])
        engine.run()
        assert memory.facts("problem")[0]["kind"] == "disk-filling"

    def test_disk_projection_tolerates_noise(self):
        memory = _memory_with(
            ("sample", dict(device="d1", site="s", group="storage",
                            metric="disk_free", value=900_000.0, time=1.0)),
            ("baseline", dict(device="d1", metric="disk_free",
                              mean=1_000_000.0, maximum=1_100_000.0)),
        )
        engine = InferenceEngine(memory, [stdlib.disk_projection_rule(0.25)])
        engine.run()
        assert memory.count("problem") == 0


class TestMultiSiteRule:
    def _problem(self, device, site):
        return ("problem", dict(kind="high-cpu", severity="major",
                                device=device, site=site, value=95,
                                metric="cpu_load"))

    def test_two_sites_produce_incident(self):
        memory = _memory_with(
            self._problem("d1", "site1"), self._problem("d2", "site2"))
        engine = InferenceEngine(memory, [stdlib.multi_site_overload_rule()])
        engine.run()
        incidents = memory.facts("incident")
        assert len(incidents) == 1
        assert incidents[0]["kind"] == "multi-site-overload"
        assert incidents[0]["site"] == "site1,site2"

    def test_same_site_does_not_fire(self):
        memory = _memory_with(
            self._problem("d1", "site1"), self._problem("d2", "site1"))
        engine = InferenceEngine(memory, [stdlib.multi_site_overload_rule()])
        engine.run()
        assert memory.count("incident") == 0

    def test_three_sites_fire_per_pair(self):
        memory = _memory_with(
            self._problem("d1", "site1"),
            self._problem("d2", "site2"),
            self._problem("d3", "site3"),
        )
        engine = InferenceEngine(memory, [stdlib.multi_site_overload_rule()])
        engine.run()
        assert memory.count("incident") == 3  # {1,2} {1,3} {2,3}
