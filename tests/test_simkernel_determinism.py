"""Property-based determinism guarantees for the kernel fast paths.

The zero-delay FIFO lane and the resource FIFO fast path are pure
optimisations: they must never change the global (time, priority, seq)
event ordering or the resource ledgers.  Two safety nets live here:

* the event queue is checked, operation by operation, against a naive
  reference model (a sorted list) over random push / fast-push / cancel /
  pop interleavings;
* random full-simulator scenarios -- sleeps, event waits, resource uses
  (mixed priorities), kills and interrupts -- are run twice and must
  produce identical event traces, ledgers and process outcomes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel.events import EventQueue
from repro.simkernel.resources import Resource, ResourceKind
from repro.simkernel.simulator import Simulator

# -- queue vs reference model -------------------------------------------------

QUEUE_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "push_fifo", "cancel", "pop"]),
        st.integers(0, 4),      # delay
        st.integers(-2, 2),     # priority
        st.integers(0, 10_000),  # handle selector for cancel
    ),
    max_size=120,
)


@settings(max_examples=120, deadline=None)
@given(ops=QUEUE_OPS)
def test_event_queue_matches_reference_model(ops):
    queue = EventQueue()
    now = 0.0
    # model rows: [event, time, priority, seq, state]
    LIVE, CANCELLED, FIRED = "live", "cancelled", "fired"
    rows = []
    seq = 0

    def live_rows():
        return [row for row in rows if row[4] == LIVE]

    for op, delay, priority, pick in ops:
        if op == "push":
            event = queue.push(now + delay, lambda: None, (), priority)
            rows.append([event, now + delay, priority, seq, LIVE])
            seq += 1
        elif op == "push_fifo":
            # contract: fast-lane entries carry the current instant
            event = queue.push_fifo(now, lambda: None)
            rows.append([event, now, 0, seq, LIVE])
            seq += 1
        elif op == "cancel":
            if rows:
                row = rows[pick % len(rows)]
                row[0].cancel()
                if row[4] == LIVE:
                    row[4] = CANCELLED
        else:  # pop
            expected = min(
                live_rows(), key=lambda row: (row[1], row[2], row[3]),
                default=None)
            popped = queue.pop()
            if expected is None:
                assert popped is None
            else:
                assert popped is expected[0]
                expected[4] = FIRED
                now = expected[1]
        live = live_rows()
        assert len(queue) == len(live)
        expected_time = min((row[1] for row in live), default=None)
        assert queue.peek_time() == expected_time

    # drain: the remaining pops must come out in exact sorted order
    expected_order = [row[0] for row in sorted(
        live_rows(), key=lambda row: (row[1], row[2], row[3]))]
    drained = []
    while (event := queue.pop()) is not None:
        drained.append(event)
    assert drained == expected_order


# -- full-simulator equivalence ----------------------------------------------

ACTION = st.tuples(
    st.sampled_from(["sleep", "use", "wait", "trigger"]),
    st.integers(0, 3),
    st.integers(0, 4),
)
SCRIPTS = st.lists(st.lists(ACTION, max_size=6), min_size=1, max_size=6)
KILLS = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 7), st.booleans()),
    max_size=4,
)


def _run_scenario(scripts, kills):
    sim = Simulator(seed=7, swallow_process_errors=True)
    cpu = Resource(sim, "cpu", ResourceKind.CPU, capacity=3.0)
    net = Resource(sim, "net", ResourceKind.NET, capacity=1.5)
    events = [sim.event("e%d" % index) for index in range(5)]
    trace = []
    sim.add_trace_hook(
        lambda now, event: trace.append((now, event.priority, event.seq)))

    def runner(script):
        for kind, a, b in script:
            if kind == "sleep":
                yield a * 0.25
            elif kind == "use":
                resource = cpu if b % 2 else net
                # priorities -2..2 exercise the FIFO->heap migration
                yield resource.use(1.0 + a, label="l%d" % (a % 3),
                                   priority=b - 2)
            elif kind == "wait":
                yield events[b % len(events)]
            elif kind == "trigger":
                event = events[b % len(events)]
                if not event.triggered:
                    event.trigger(a)

    processes = [
        sim.spawn(runner(script), name="p%d" % index)
        for index, script in enumerate(scripts)
    ]

    def killer(delay, index, use_interrupt):
        yield delay * 0.3
        target = processes[index % len(processes)]
        if use_interrupt:
            target.interrupt("stop")
        else:
            target.kill()

    for index, (delay, target, use_interrupt) in enumerate(kills):
        sim.spawn(killer(delay, target, use_interrupt), name="k%d" % index)

    sim.run(until=1000.0)
    return (
        trace,
        cpu.snapshot(),
        net.snapshot(),
        [(process.done, process.result) for process in processes],
    )


@settings(max_examples=40, deadline=None)
@given(scripts=SCRIPTS, kills=KILLS)
def test_repeated_runs_are_identical(scripts, kills):
    first = _run_scenario(scripts, kills)
    second = _run_scenario(scripts, kills)
    assert first == second


# -- timer wheel vs single heap ----------------------------------------------

# Delays span several bucket widths and reach past the wheel span (with the
# tiny span below) so pushes hit every lane: the activated bucket, pending
# buckets, the far-future heap fallback, and the fast lane.
WHEEL_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "push", "push_fifo", "cancel", "pop"]),
        st.floats(0.0, 12.0, allow_nan=False, allow_infinity=False),
        st.integers(-2, 2),
        st.integers(0, 10_000),
    ),
    max_size=150,
)


def _apply_ops(queue, ops):
    """Run an op script against ``queue``; return the observable history.

    Every push/pop/peek outcome is recorded as plain ``(time, priority,
    seq)`` tuples so histories from two queue implementations compare
    directly.
    """
    now = 0.0
    handles = []
    history = []
    for op, delay, priority, pick in ops:
        if op == "push":
            event = queue.push(now + delay, lambda: None, (), priority)
            handles.append(event)
        elif op == "push_fifo":
            handles.append(queue.push_fifo(now, lambda: None))
        elif op == "cancel":
            if handles:
                handles[pick % len(handles)].cancel()
        else:  # pop
            event = queue.pop()
            if event is not None:
                now = event.time
                history.append(("pop", event.time, event.priority, event.seq))
            else:
                history.append(("pop", None))
        history.append(("len", len(queue)))
        history.append(("peek", queue.peek_time()))
    while (event := queue.pop()) is not None:
        history.append(("drain", event.time, event.priority, event.seq))
    return history


@settings(max_examples=150, deadline=None)
@given(ops=WHEEL_OPS)
def test_timer_wheel_matches_single_heap(ops):
    # Tiny width/span and min_pending=0 force the wheel through bucket
    # activation, the in-activated-bucket insort path, and the far-future
    # heap fallback on short scripts.  The heap queue is the reference.
    wheel = EventQueue(wheel=True, wheel_width=0.5, wheel_span=8,
                       wheel_min_pending=0)
    heap = EventQueue(wheel=False)
    assert _apply_ops(wheel, ops) == _apply_ops(heap, ops)


@settings(max_examples=60, deadline=None)
@given(ops=WHEEL_OPS)
def test_timer_wheel_default_tuning_matches_heap(ops):
    # The shipped defaults (min_pending gate active) must agree too: the
    # heap<->wheel handover happens mid-script as the queue grows/shrinks.
    wheel = EventQueue(wheel=True, wheel_width=0.5, wheel_span=8192,
                       wheel_min_pending=4)
    heap = EventQueue(wheel=False)
    assert _apply_ops(wheel, ops) == _apply_ops(heap, ops)


@settings(max_examples=30, deadline=None)
@given(scripts=SCRIPTS, kills=KILLS)
def test_full_simulator_identical_with_wheel_disabled(scripts, kills):
    # Whole-kernel A/B: the same random scenario, once on the default
    # wheel queue and once on the plain heap, must produce identical
    # traces, ledgers and process outcomes.
    import repro.simkernel.simulator as simulator_module

    with_wheel = _run_scenario(scripts, kills)
    original = simulator_module.EventQueue
    simulator_module.EventQueue = lambda: EventQueue(wheel=False)
    try:
        without_wheel = _run_scenario(scripts, kills)
    finally:
        simulator_module.EventQueue = original
    assert with_wheel == without_wheel


def test_figure6_bytes_identical_with_wheel_disabled(monkeypatch):
    """The paper reproduction must not notice the scheduler swap."""
    import json

    from repro.baselines.driver import run_figure6
    from repro.evaluation import export

    def render(results):
        reports = "\n".join(
            results[label].report.render()
            for label in ("centralized", "multiagent", "grid"))
        payload = json.dumps(
            {label: export.run_result_to_dict(result)
             for label, result in results.items()},
            sort_keys=True)
        return reports + "\n" + payload

    with_wheel = render(run_figure6(polls_per_type=3, seed=42))
    import repro.simkernel.simulator as simulator_module

    monkeypatch.setattr(simulator_module, "EventQueue",
                        lambda: EventQueue(wheel=False))
    without_wheel = render(run_figure6(polls_per_type=3, seed=42))
    assert with_wheel == without_wheel


# -- slim join vs eager completion events -------------------------------------

JOIN_SCRIPTS = st.lists(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 4)),
             max_size=5),
    min_size=1, max_size=5,
)


def _run_join_scenario(scripts, mode):
    """Parents join children via ``mode``; returns the observable outcome.

    Modes:
        process: plain ``yield child`` (slim joiner list, no SimEvent).
        completion: ``yield child.completion`` (eager SimEvent path).
        touch: materialize ``child.completion`` first, then ``yield child``
            -- both mechanisms armed at once.
    """
    sim = Simulator(seed=11, swallow_process_errors=True)
    trace = []
    sim.add_trace_hook(
        lambda now, event: trace.append((now, event.priority, event.seq)))
    results = []

    def child(steps):
        total = 0
        for sleep, value in steps:
            yield sleep * 0.25
            total += value
        return total

    def parent(steps):
        target = sim.spawn(child(steps), name="child")
        if mode == "completion":
            result = yield target.completion
        elif mode == "touch":
            _ = target.completion  # materialize before the join
            result = yield target
        else:
            result = yield target
        results.append(result)
        # Join again after completion: the done-process fast path must
        # resume at the same instant regardless of mechanism.
        late = yield target if mode != "completion" else target.completion
        results.append(late)

    for index, steps in enumerate(scripts):
        sim.spawn(parent(steps), name="parent%d" % index)
    sim.run(until=1000.0)
    return trace, results


@settings(max_examples=40, deadline=None)
@given(scripts=JOIN_SCRIPTS)
def test_join_paths_are_equivalent(scripts):
    baseline = _run_join_scenario(scripts, "process")
    assert _run_join_scenario(scripts, "touch") == baseline
    assert _run_join_scenario(scripts, "completion") == baseline
