"""Unit tests for the event queue and SimEvent primitives."""

import pytest

from repro.simkernel.events import EventQueue, SimEvent
from repro.simkernel.simulator import Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, fired.append, ("c",))
        queue.push(1.0, fired.append, ("a",))
        queue.push(2.0, fired.append, ("b",))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback(*event.args)
        assert fired == ["a", "b", "c"]

    def test_same_time_preserves_insertion_order(self):
        queue = EventQueue()
        order = []
        for tag in ("first", "second", "third"):
            queue.push(5.0, order.append, (tag,))
        while (event := queue.pop()) is not None:
            event.callback(*event.args)
        assert order == ["first", "second", "third"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, order.append, ("low",), priority=10)
        queue.push(5.0, order.append, ("high",), priority=-10)
        while (event := queue.pop()) is not None:
            event.callback(*event.args)
        assert order == ["high", "low"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, fired.append, ("keep",))
        drop = queue.push(0.5, fired.append, ("drop",))
        drop.cancel()
        event = queue.pop()
        assert event is keep

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        first.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(4.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 4.0

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None

    def test_len_is_live_count_across_lanes(self):
        queue = EventQueue()
        heap_event = queue.push(1.0, lambda: None)
        fast_event = queue.push_fifo(0.0, lambda: None)
        assert len(queue) == 2
        fast_event.cancel()
        assert len(queue) == 1
        fast_event.cancel()  # idempotent: no double decrement
        assert len(queue) == 1
        assert queue.pop() is heap_event
        assert len(queue) == 0
        heap_event.cancel()  # cancelling an already-fired event is a no-op
        assert len(queue) == 0

    def test_fifo_lane_preserves_global_seq_order(self):
        queue = EventQueue()
        order = []
        queue.push(0.0, order.append, ("heap-first",))
        queue.push_fifo(0.0, order.append, ("fifo",))
        queue.push(0.0, order.append, ("heap-second",))
        while (event := queue.pop()) is not None:
            event.callback(*event.args)
        assert order == ["heap-first", "fifo", "heap-second"]

    def test_fifo_lane_yields_to_negative_priority(self):
        queue = EventQueue()
        order = []
        queue.push_fifo(0.0, order.append, ("fifo",))
        queue.push(0.0, order.append, ("urgent",), priority=-1)
        queue.push(0.0, order.append, ("lazy",), priority=1)
        while (event := queue.pop()) is not None:
            event.callback(*event.args)
        assert order == ["urgent", "fifo", "lazy"]

    def test_fifo_lane_cancellation_skipped_on_pop(self):
        queue = EventQueue()
        fired = []
        dropped = queue.push_fifo(0.0, fired.append, ("dropped",))
        queue.push_fifo(0.0, fired.append, ("kept",))
        dropped.cancel()
        assert queue.peek_time() == 0.0
        while (event := queue.pop()) is not None:
            event.callback(*event.args)
        assert fired == ["kept"]

    def test_clear_resets_both_lanes(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push_fifo(0.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None
        handle.cancel()  # detached handle must not corrupt the count
        assert len(queue) == 0


class TestSimEvent:
    def test_trigger_delivers_value_to_waiter(self):
        sim = Simulator()
        event = SimEvent(sim, "x")
        got = []
        event.add_waiter(got.append)
        event.trigger(42)
        sim.run()
        assert got == [42]

    def test_waiter_added_after_trigger_fires_immediately(self):
        sim = Simulator()
        event = SimEvent(sim, "x")
        event.trigger("late")
        got = []
        event.add_waiter(got.append)
        sim.run()
        assert got == ["late"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        event = SimEvent(sim)
        event.trigger()
        with pytest.raises(RuntimeError):
            event.trigger()

    def test_multiple_waiters_all_fire(self):
        sim = Simulator()
        event = SimEvent(sim)
        got = []
        for _ in range(3):
            event.add_waiter(got.append)
        event.trigger("v")
        sim.run()
        assert got == ["v"] * 3

    def test_discard_waiter_prevents_delivery(self):
        sim = Simulator()
        event = SimEvent(sim)
        got = []
        event.add_waiter(got.append)
        event.discard_waiter(got.append)
        event.trigger(1)
        sim.run()
        assert got == []
