"""Unit tests for resource queueing and busy-time accounting."""

import pytest

from repro.simkernel.resources import Resource, ResourceKind
from repro.simkernel.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def cpu(sim):
    return Resource(sim, "cpu", ResourceKind.CPU, capacity=10.0)


def test_service_time_is_units_over_capacity(sim, cpu):
    def proc():
        yield cpu.use(25.0)
        return sim.now

    process = sim.spawn(proc())
    sim.run()
    assert process.result == 2.5
    assert cpu.busy_time == 2.5


def test_fifo_queueing_serializes_requests(sim, cpu):
    finish_times = {}

    def proc(tag, units):
        yield cpu.use(units)
        finish_times[tag] = sim.now

    sim.spawn(proc("first", 10.0))
    sim.spawn(proc("second", 10.0))
    sim.run()
    assert finish_times["first"] == 1.0
    assert finish_times["second"] == 2.0


def test_priority_jumps_queue(sim, cpu):
    order = []

    def proc(tag, units, priority):
        yield cpu.use(units, priority=priority)
        order.append(tag)

    def spawn_all():
        # First grabs the server; urgent should overtake normal in queue.
        sim.spawn(proc("head", 10.0, 0))
        sim.spawn(proc("normal", 10.0, 5))
        sim.spawn(proc("urgent", 10.0, -5))
        yield 0.0

    sim.spawn(spawn_all())
    sim.run()
    assert order == ["head", "urgent", "normal"]


def test_ledger_tracks_units_by_label(sim, cpu):
    def proc():
        yield cpu.use(10.0, label="parse")
        yield cpu.use(5.0, label="store")
        yield cpu.use(5.0, label="parse")

    sim.spawn(proc())
    sim.run()
    assert cpu.units_by_label == {"parse": 15.0, "store": 5.0}
    assert cpu.total_units == 20.0
    assert cpu.completed_requests == 3


def test_charge_accounts_without_queueing(sim, cpu):
    cpu.charge(30.0, label="direct")
    assert cpu.total_units == 30.0
    assert cpu.busy_time == 3.0
    assert cpu.completed_requests == 0


def test_utilization_fraction(sim, cpu):
    def proc():
        yield cpu.use(50.0)

    sim.spawn(proc())
    sim.run()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert cpu.utilization() == pytest.approx(0.5)
    assert cpu.utilization(horizon=20.0) == pytest.approx(0.25)


def test_wait_and_service_time_recorded(sim, cpu):
    uses = []

    def proc(units):
        request = yield cpu.use(units)
        uses.append(request)

    sim.spawn(proc(10.0))
    sim.spawn(proc(20.0))
    sim.run()
    first, second = uses
    assert first.wait_time == 0.0
    assert first.service_time == 1.0
    assert second.wait_time == 1.0
    assert second.service_time == 2.0


def test_zero_capacity_rejected(sim):
    with pytest.raises(ValueError):
        Resource(sim, "bad", ResourceKind.CPU, capacity=0.0)


def test_negative_units_rejected(sim, cpu):
    with pytest.raises(ValueError):
        cpu.use(-1.0)
    with pytest.raises(ValueError):
        cpu.charge(-1.0)


def test_zero_units_complete_instantly(sim, cpu):
    def proc():
        yield cpu.use(0.0)
        return sim.now

    process = sim.spawn(proc())
    sim.run()
    assert process.result == 0.0
    assert cpu.busy_time == 0.0


def test_snapshot_is_plain_data(sim, cpu):
    def proc():
        yield cpu.use(10.0, label="x")

    sim.spawn(proc())
    sim.run()
    snap = cpu.snapshot()
    assert snap["total_units"] == 10.0
    assert snap["units_by_label"] == {"x": 10.0}
    assert snap["kind"] == ResourceKind.CPU


def test_queue_length_visible_while_busy(sim, cpu):
    lengths = []

    def hog():
        yield cpu.use(100.0)

    def waiter():
        yield cpu.use(1.0)

    def observer():
        yield 1.0
        lengths.append(cpu.queue_length)
        lengths.append(cpu.busy)

    sim.spawn(hog())
    sim.spawn(waiter())
    sim.spawn(observer())
    sim.run()
    assert lengths == [1, True]


def test_abandoned_in_service_keeps_server_occupied(sim, cpu):
    """Killing the served process must not free the server early.

    The killed request's completion is still scheduled; starting a new
    request before it fires would briefly double-serve the single-server
    resource and undercount contention.
    """
    starts = {}

    def victim():
        yield cpu.use(10.0)  # 1.0s of service at capacity 10

    def late_arrival():
        yield 0.6  # enqueues after the kill, before the old completion
        request = yield cpu.use(10.0)
        starts["late"] = request.started_at

    victim_process = sim.spawn(victim())
    sim.spawn(late_arrival())
    sim.schedule(0.5, victim_process.kill)
    sim.run()
    assert starts["late"] == 1.0
    assert cpu.completed_requests == 1
    assert cpu.total_units == 10.0


def test_abandoned_in_service_still_reports_busy(sim, cpu):
    observations = []

    def victim():
        yield cpu.use(10.0)

    def observer():
        yield 0.7
        observations.append(cpu.busy)

    victim_process = sim.spawn(victim())
    sim.spawn(observer())
    sim.schedule(0.5, victim_process.kill)
    sim.run()
    # at t=0.7 the abandoned request's completion (t=1.0) has not fired yet
    assert observations == [True]
    assert not cpu.busy


def test_priority_request_after_fifo_queue_still_ordered(sim, cpu):
    """The FIFO fast path must hand over cleanly to the priority heap."""
    order = []

    def proc(tag, priority):
        yield cpu.use(10.0, priority=priority)
        order.append(tag)

    def spawn_all():
        sim.spawn(proc("head", 0))
        sim.spawn(proc("fifo-a", 0))
        sim.spawn(proc("fifo-b", 0))
        sim.spawn(proc("urgent", -3))
        sim.spawn(proc("lazy", 7))
        yield 0.0

    sim.spawn(spawn_all())
    sim.run()
    assert order == ["head", "urgent", "fifo-a", "fifo-b", "lazy"]
