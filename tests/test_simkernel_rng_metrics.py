"""Unit tests for RNG streams and metric primitives."""

import pytest

from repro.simkernel.metrics import Counter, Gauge, MetricRegistry, TimeSeries
from repro.simkernel.rng import RngStream, derive_seed


class TestRng:
    def test_same_seed_same_stream_reproduces(self):
        a = RngStream(7, "dev")
        b = RngStream(7, "dev")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_differ(self):
        a = RngStream(7, "dev1")
        b = RngStream(7, "dev2")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_bounded_gauss_respects_bounds(self):
        stream = RngStream(1, "g")
        values = [stream.bounded_gauss(50, 100, 0, 100) for _ in range(200)]
        assert all(0 <= value <= 100 for value in values)

    def test_expovariate_requires_positive_rate(self):
        with pytest.raises(ValueError):
            RngStream(1, "e").expovariate(0)

    def test_choice_of_empty_raises(self):
        with pytest.raises(ValueError):
            RngStream(1, "c").choice([])

    def test_jitter_within_fraction(self):
        stream = RngStream(1, "j")
        for _ in range(100):
            value = stream.jitter(10.0, 0.2)
            assert 8.0 <= value <= 12.0

    def test_shuffle_returns_permutation(self):
        stream = RngStream(1, "s")
        items = list(range(20))
        shuffled = stream.shuffle(list(items))
        assert sorted(shuffled) == items


class TestMetrics:
    def test_counter_only_increases(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_series_records_and_aggregates(self):
        series = TimeSeries("s")
        for time, value in [(0, 1.0), (1, 3.0), (2, 2.0)]:
            series.record(time, value)
        assert series.last() == 2.0
        assert series.mean() == 2.0
        assert series.maximum() == 3.0
        assert len(series) == 3

    def test_series_rejects_time_regression(self):
        series = TimeSeries("s")
        series.record(5, 1.0)
        with pytest.raises(ValueError):
            series.record(4, 1.0)

    def test_percentile_interpolates(self):
        series = TimeSeries("s")
        for index, value in enumerate([10.0, 20.0, 30.0, 40.0]):
            series.record(index, value)
        assert series.percentile(0) == 10.0
        assert series.percentile(100) == 40.0
        assert series.percentile(50) == 25.0

    def test_percentile_bounds_checked(self):
        series = TimeSeries("s")
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_time_weighted_mean_of_step_function(self):
        series = TimeSeries("s")
        series.record(0.0, 0.0)
        series.record(5.0, 10.0)
        # 0 for 5s, 10 for 5s -> mean 5 over [0, 10]
        assert series.time_weighted_mean(horizon=10.0) == pytest.approx(5.0)

    def test_empty_series_aggregates_are_zero(self):
        series = TimeSeries("s")
        assert series.mean() == 0.0
        assert series.maximum() == 0.0
        assert series.percentile(50) == 0.0
        assert series.last() is None

    def test_registry_reuses_instances(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.series("c") is registry.series("c")

    def test_registry_snapshot(self):
        registry = MetricRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(5)
        registry.series("c").record(0, 1)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 5}
        assert snap["series"] == {"c": [(0, 1)]}
