"""Unit tests for the simulator and process semantics."""

import pytest

from repro.simkernel.resources import Resource, ResourceKind
from repro.simkernel.simulator import Interrupted, SimulationError, Simulator


class TestScheduling:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, (1,))
        end = sim.run(until=5.0)
        assert end == 5.0
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, (1,))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_max_events_bounds_execution(self):
        sim = Simulator()
        fired = []
        for index in range(10):
            sim.schedule(float(index), fired.append, (index,))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_repr_pending_counts_only_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        dropped = sim.schedule(2.0, lambda: None)
        dropped.cancel()
        assert "pending=1" in repr(sim)

    def test_zero_delay_interleaves_with_same_time_heap_events(self):
        # an event fired at t=1 that schedules 0-delay work must not jump
        # ahead of an already-queued same-time event
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, order.append, ("zero-delay",))

        sim.schedule(1.0, first)
        sim.schedule(1.0, order.append, ("second",))
        sim.run()
        assert order == ["first", "second", "zero-delay"]

    def test_trace_hook_sees_every_event(self):
        sim = Simulator()
        seen = []
        sim.add_trace_hook(lambda now, event: seen.append(now))
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert seen == [1.0, 2.0]


class TestProcesses:
    def test_sleep_and_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.5
            return "done"

        process = sim.spawn(proc())
        sim.run()
        assert process.done
        assert process.result == "done"
        assert sim.now == 1.5

    def test_wait_on_event_receives_value(self):
        sim = Simulator()
        event = sim.event()

        def proc():
            value = yield event
            return value * 2

        process = sim.spawn(proc())
        sim.schedule(3.0, event.trigger, (21,))
        sim.run()
        assert process.result == 42

    def test_join_another_process(self):
        sim = Simulator()

        def child():
            yield 2.0
            return "child-result"

        def parent(child_process):
            result = yield child_process
            return "got:" + result

        child_process = sim.spawn(child())
        parent_process = sim.spawn(parent(child_process))
        sim.run()
        assert parent_process.result == "got:child-result"

    def test_join_finished_process_resumes_immediately(self):
        sim = Simulator()

        def child():
            return "early"
            yield  # pragma: no cover

        def parent(child_process):
            yield 5.0
            result = yield child_process
            return result

        child_process = sim.spawn(child())
        parent_process = sim.spawn(parent(child_process))
        sim.run()
        assert parent_process.result == "early"

    def test_kill_stops_process(self):
        sim = Simulator()
        progressed = []

        def proc():
            yield 1.0
            progressed.append("a")
            yield 10.0
            progressed.append("b")

        process = sim.spawn(proc())
        sim.schedule(5.0, process.kill)
        sim.run()
        assert progressed == ["a"]
        assert process.done
        assert process.result is None

    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield 100.0
            except Interrupted as exc:
                caught.append(exc.cause)
                return "interrupted"

        process = sim.spawn(proc())
        sim.schedule(1.0, process.interrupt, ("reason",))
        sim.run()
        assert caught == ["reason"]
        assert process.result == "interrupted"

    def test_error_propagates_by_default(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise ValueError("boom")

        sim.spawn(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_error_swallowed_when_configured(self):
        sim = Simulator(swallow_process_errors=True)

        def proc():
            yield 1.0
            raise ValueError("boom")

        process = sim.spawn(proc())
        sim.run()
        assert isinstance(process.error, ValueError)
        assert process.done

    def test_yielding_garbage_fails_the_process(self):
        sim = Simulator(swallow_process_errors=True)

        def proc():
            yield object()

        process = sim.spawn(proc())
        sim.run()
        assert isinstance(process.error, SimulationError)

    def test_completion_event_carries_result(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 7

        process = sim.spawn(proc())
        got = []
        process.completion.add_waiter(got.append)
        sim.run()
        assert got == [7]

    def test_duplicate_names_are_uniquified(self):
        sim = Simulator()

        def worker():
            yield 0.1

        first = sim.spawn(worker(), name="w")
        second = sim.spawn(worker(), name="w")
        assert first.name != second.name

    def test_rng_streams_are_named_and_stable(self):
        sim_a = Simulator(seed=9)
        sim_b = Simulator(seed=9)
        assert sim_a.rng("x").random() == sim_b.rng("x").random()
        assert sim_a.rng("x") is sim_a.rng("x")

    def test_timeout_event_self_triggers(self):
        sim = Simulator()
        event = sim.timeout_event(4.0, value="ping")

        def proc():
            value = yield event
            return (sim.now, value)

        process = sim.spawn(proc())
        sim.run()
        assert process.result == (4.0, "ping")


class TestProcessResourceInteraction:
    def test_kill_while_queued_releases_slot(self):
        sim = Simulator()
        cpu = Resource(sim, "cpu", ResourceKind.CPU, capacity=1.0)

        def hog():
            yield cpu.use(10.0)
            return "hog-done"

        def victim():
            yield cpu.use(5.0)
            return "victim-done"

        def third():
            yield cpu.use(2.0)
            return "third-done"

        sim.spawn(hog())
        victim_process = sim.spawn(victim())
        third_process = sim.spawn(third())
        sim.schedule(1.0, victim_process.kill)
        sim.run()
        assert third_process.result == "third-done"
        # victim never served: only hog (10) + third (2) units accounted
        assert cpu.total_units == 12.0
