"""Tests for the simulation tracer."""

import pytest

from repro.network.addressing import Address
from repro.network.topology import Network
from repro.network.transport import Message, Transport
from repro.simkernel.simulator import Simulator
from repro.simkernel.trace import SimulationTracer, trace_transport


class TestTracer:
    def test_records_carry_time_and_detail(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim)
        sim.schedule(3.0, lambda: tracer.record("tick", n=1))
        sim.run()
        assert len(tracer) == 1
        entry = tracer.entries()[0]
        assert entry.time == 3.0
        assert entry.kind == "tick"
        assert entry.detail == {"n": 1}

    def test_capacity_bounds_and_counts_drops(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim, capacity=3)
        for index in range(5):
            tracer.record("x", i=index)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [entry.detail["i"] for entry in tracer.entries()] == [2, 3, 4]

    def test_kind_filter_counts_separately_from_capacity_drops(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim, kinds=("keep",))
        tracer.record("keep", a=1)
        tracer.record("drop", b=2)
        assert len(tracer) == 1
        # Filtered-by-kind records are not "dropped": they were never
        # wanted, while dropped counts capacity evictions only.
        assert tracer.filtered == 1
        assert tracer.dropped == 0

    def test_capacity_and_filter_accounting_are_independent(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim, capacity=2, kinds=("keep",))
        for index in range(4):
            tracer.record("keep", i=index)
        tracer.record("noise")
        assert len(tracer) == 2
        assert tracer.dropped == 2
        assert tracer.filtered == 1
        assert "dropped=2" in repr(tracer)
        assert "filtered=1" in repr(tracer)

    def test_entry_filters(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim)
        for time, kind in [(1.0, "a"), (2.0, "b"), (3.0, "a")]:
            sim.schedule(time, lambda k=kind: tracer.record(k))
        sim.run()
        assert len(tracer.entries(kind="a")) == 2
        assert len(tracer.entries(start=1.5)) == 2
        assert len(tracer.entries(end=1.5)) == 1
        assert len(tracer.entries(kind="a", start=2.5)) == 1

    def test_counts_and_render(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim)
        tracer.record("a", x=1)
        tracer.record("a", x=2)
        tracer.record("b")
        assert tracer.counts_by_kind() == {"a": 2, "b": 1}
        text = tracer.render(kind="a", limit=1)
        assert "x=2" in text
        assert text.count("\n") == 0

    def test_kernel_capture(self):
        sim = Simulator(seed=1)
        tracer = SimulationTracer(sim, capture_kernel=True)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert tracer.counts_by_kind().get("kernel", 0) >= 1


class TestTransportTracing:
    @pytest.fixture
    def world(self):
        sim = Simulator(seed=2)
        network = Network(sim)
        network.add_host("a", "site1")
        network.add_host("b", "site1")
        network.host("b").bind("in", lambda message: None)
        transport = Transport(network)
        tracer = SimulationTracer(sim)
        trace_transport(transport, tracer)
        return sim, network, transport, tracer

    def test_delivery_recorded_with_latency(self, world):
        sim, network, transport, tracer = world
        transport.send(Message(
            Address("a", "out"), Address("b", "in"), None, 5.0, "http"))
        sim.run(until=10)
        messages = tracer.entries(kind="message")
        assert len(messages) == 1
        assert messages[0].detail["protocol"] == "http"
        assert messages[0].detail["latency"] > 0

    def test_drop_recorded_with_reason(self, world):
        sim, network, transport, tracer = world
        transport.send(Message(
            Address("a", "out"), Address("ghost", "in"), None, 1.0))
        sim.run(until=10)
        drops = tracer.entries(kind="message-drop")
        assert len(drops) == 1
        assert "unknown destination" in drops[0].detail["reason"]
        assert tracer.entries(kind="message") == []
