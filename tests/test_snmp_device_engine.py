"""Unit tests for managed devices, the SNMP engine and the client."""

import pytest

from repro.network.topology import Network
from repro.network.transport import Transport
from repro.simkernel.simulator import Simulator
from repro.snmp.device import ManagedDevice, PROFILES
from repro.snmp.engine import PduType, SnmpEngine, SnmpError
from repro.snmp.manager import SnmpClient, SnmpTimeout
from repro.snmp.mib import std
from repro.snmp.traps import TrapSink


@pytest.fixture
def stack():
    sim = Simulator(seed=5)
    network = Network(sim)
    manager_host = network.add_host("mgr", "site1", role="manager")
    device_host = network.add_host("dev1", "site1", role="device")
    transport = Transport(network)
    device = ManagedDevice(sim, device_host, profile="server", tick=0.5)
    engine = SnmpEngine(device, transport)
    client = SnmpClient(manager_host, transport, timeout=5.0)
    return sim, network, transport, device, engine, client


class TestDevice:
    def test_profiles_shape_the_mib(self, stack):
        sim, network, transport, device, engine, client = stack
        assert device.mib.get(std.IF_IN_OCTETS.child(2)) is not None
        router_host = network.add_host("r1", "site1", role="device")
        router = ManagedDevice(sim, router_host, profile="router")
        assert router.mib.get(std.IF_IN_OCTETS.child(8)) is not None
        assert device.mib.get(std.IF_IN_OCTETS.child(8)) is None

    def test_dynamics_evolve_metrics(self, stack):
        sim, _, _, device, _, _ = stack
        before = list(device.if_in_octets)
        sim.run(until=5.0)
        assert device.if_in_octets != before
        assert 0 <= device.cpu_load <= 100

    def test_cpu_runaway_fault(self, stack):
        sim, _, _, device, _, _ = stack
        device.inject_fault("cpu_runaway")
        sim.run(until=3.0)
        assert device.cpu_load >= 90.0
        device.clear_fault("cpu_runaway")
        sim.run(until=10.0)
        assert device.cpu_load < 90.0

    def test_disk_filling_fault_drains_disk(self, stack):
        sim, _, _, device, _, _ = stack
        before = device.disk_free_kb
        device.inject_fault("disk_filling")
        sim.run(until=10.0)
        assert device.disk_free_kb < before

    def test_interface_down_fault_changes_oper_status(self, stack):
        sim, _, _, device, _, _ = stack
        status_oid = std.IF_OPER_STATUS.child(1)
        assert device.mib.get(status_oid).read() == 1
        device.inject_fault("interface_down", interface=0)
        assert device.mib.get(status_oid).read() == 2
        device.clear_fault("interface_down", interface=0)
        assert device.mib.get(status_oid).read() == 1

    def test_invalid_fault_kinds_rejected(self, stack):
        _, _, _, device, _, _ = stack
        with pytest.raises(ValueError):
            device.inject_fault("gremlins")
        with pytest.raises(ValueError):
            device.inject_fault("interface_down")  # missing index
        with pytest.raises(ValueError):
            device.inject_fault("interface_down", interface=99)

    def test_stop_halts_dynamics(self, stack):
        sim, _, _, device, _, _ = stack
        sim.run(until=2.0)
        device.stop()
        snapshot = device.cpu_load
        sim.run(until=10.0)
        assert device.cpu_load == snapshot


class TestEngineAndClient:
    def _run(self, sim, generator):
        process = sim.spawn(generator)
        sim.run(until=60.0)
        return process

    def test_get_returns_values(self, stack):
        sim, _, _, device, _, client = stack

        def proc():
            response = yield from client.get(
                "dev1", [std.CPU_LOAD, std.SYS_NAME])
            return response

        process = self._run(sim, proc())
        response = process.result
        assert response.ok
        values = {vb.name: vb.value for vb in response.varbinds}
        assert values["sysName"] == "dev1"
        assert 0 <= values["ssCpuBusy"] <= 100

    def test_get_unknown_oid_flags_error(self, stack):
        sim, _, _, _, _, client = stack

        def proc():
            response = yield from client.get("dev1", ["9.9.9.9"])
            return response

        response = self._run(sim, proc()).result
        assert not response.ok
        assert response.varbinds[0].error == SnmpError.NO_SUCH_OBJECT

    def test_getnext_and_walk(self, stack):
        sim, _, _, device, _, client = stack

        def proc():
            walked = yield from client.walk("dev1", std.PROC_TABLE)
            return walked

        walked = self._run(sim, proc()).result
        assert len(walked) == device.profile.process_slots
        assert all(vb.value.startswith("proc-dev1") for vb in walked)

    def test_getbulk_repeats(self, stack):
        sim, _, _, _, _, client = stack

        def proc():
            response = yield from client.get_bulk(
                "dev1", [std.SYS_DESCR], max_repetitions=3)
            return response

        response = self._run(sim, proc()).result
        assert len(response.varbinds) == 3

    def test_set_rejected_on_readonly(self, stack):
        sim, _, _, _, _, client = stack

        def proc():
            response = yield from client.set("dev1", {std.CPU_LOAD: 5})
            return response

        response = self._run(sim, proc()).result
        assert response.varbinds[0].error == SnmpError.NOT_WRITABLE

    def test_timeout_when_device_down(self, stack):
        sim, network, _, _, _, client = stack
        network.host("dev1").fail()

        def proc():
            try:
                yield from client.get("dev1", [std.CPU_LOAD])
            except SnmpTimeout:
                return "timeout"
            return "answered"

        assert self._run(sim, proc()).result == "timeout"
        assert client.timeouts == 1

    def test_poll_charges_device_cpu_and_both_nics(self, stack):
        sim, network, _, device, engine, client = stack

        def proc():
            yield from client.get(
                "dev1", [std.CPU_LOAD],
                request_size_units=0.5, response_size_units=4.5,
            )

        self._run(sim, proc())
        assert device.host.cpu.units_by_label["snmp-agent"] > 0
        assert network.host("mgr").nic.total_units == pytest.approx(5.0)
        assert engine.pdus_handled == 1


class TestTraps:
    def test_trap_reaches_subscribers(self, stack):
        sim, network, transport, device, _, _ = stack
        sink = TrapSink(network.host("mgr"), transport)
        got = []
        sink.subscribe(got.append)
        trap = sink.emit_from(device, "linkDown", {"interface": 1}, "critical")
        sim.run(until=5.0)
        assert got == [trap]
        assert sink.received == [trap]
        assert trap.raised_at is not None
        assert trap.device_name == "dev1"
