"""Unit tests for OID algebra and MIB trees."""

import pytest

from repro.snmp.mib import MibObject, MibTree, StandardMib, std
from repro.snmp.oids import OID


class TestOID:
    def test_parse_from_string(self):
        oid = OID("1.3.6.1")
        assert oid.parts == (1, 3, 6, 1)
        assert str(oid) == "1.3.6.1"

    def test_construct_from_iterable_and_oid(self):
        assert OID((1, 2, 3)) == OID("1.2.3")
        assert OID(OID("1.2")) == OID("1.2")

    def test_malformed_strings_rejected(self):
        for bad in ("", "1..2", "1.a.2"):
            with pytest.raises(ValueError):
                OID(bad)

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            OID((1, -2))

    def test_ordering_is_lexicographic(self):
        assert OID("1.2") < OID("1.2.0")
        assert OID("1.2.9") < OID("1.10")
        assert OID("2") > OID("1.9.9.9")

    def test_child_and_parent(self):
        oid = OID("1.3").child(6, 1)
        assert oid == OID("1.3.6.1")
        assert oid.parent == OID("1.3.6")
        with pytest.raises(ValueError):
            OID("1").parent

    def test_prefix_relationship(self):
        assert OID("1.3.6").is_prefix_of("1.3.6.1.2")
        assert OID("1.3.6").is_prefix_of("1.3.6")
        assert not OID("1.3.6").is_prefix_of("1.3.7")

    def test_hashable_and_immutable(self):
        oid = OID("1.2.3")
        assert hash(oid) == hash(OID("1.2.3"))
        with pytest.raises(AttributeError):
            oid.parts = (9,)

    def test_indexing(self):
        oid = OID("1.2.3")
        assert oid[0] == 1
        assert len(oid) == 3


class TestMibTree:
    @pytest.fixture
    def tree(self):
        tree = MibTree()
        tree.register_scalar("1.1", "a", 10)
        tree.register_scalar("1.2", "b", lambda: 20)
        tree.register_scalar("1.3.1", "c1", 1)
        tree.register_scalar("1.3.2", "c2", 2)
        tree.register_scalar("2.1", "d", 99, writable=True)
        return tree

    def test_get_exact(self, tree):
        assert tree.get("1.1").read() == 10
        assert tree.get("9.9") is None

    def test_callable_values_evaluated_at_read(self, tree):
        assert tree.get("1.2").read() == 20

    def test_get_next_walks_in_order(self, tree):
        assert tree.get_next("1.1").oid == OID("1.2")
        assert tree.get_next("1.2").oid == OID("1.3.1")
        assert tree.get_next("2.1") is None
        # get_next from a non-existent OID still finds the successor
        assert tree.get_next("1.2.5").oid == OID("1.3.1")

    def test_walk_subtree(self, tree):
        names = [obj.name for obj in tree.walk("1.3")]
        assert names == ["c1", "c2"]
        assert tree.walk("3") == []

    def test_duplicate_registration_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.register_scalar("1.1", "dup", 0)

    def test_write_semantics(self, tree):
        tree.get("2.1").write(100)
        assert tree.get("2.1").read() == 100
        with pytest.raises(PermissionError):
            tree.get("1.1").write(5)
        with pytest.raises(PermissionError):
            MibObject("5.5", "calc", lambda: 1, writable=True).write(2)

    def test_contains_and_len(self, tree):
        assert "1.1" in tree
        assert OID("1.1") in tree
        assert "9.9" not in tree
        assert len(tree) == 5


class TestStandardMib:
    def test_group_oids_performance(self):
        oids = std.group_oids(std.GROUP_PERFORMANCE)
        assert std.CPU_LOAD in oids
        assert std.MEM_AVAIL in oids

    def test_group_oids_storage_includes_process_table(self):
        oids = std.group_oids(std.GROUP_STORAGE, process_slots=2)
        assert std.DISK_FREE in oids
        assert std.PROC_TABLE.child(1) in oids
        assert std.PROC_TABLE.child(2) in oids
        assert std.PROC_TABLE.child(3) not in oids

    def test_group_oids_traffic_scales_with_interfaces(self):
        few = std.group_oids(std.GROUP_TRAFFIC, interface_count=1)
        many = std.group_oids(std.GROUP_TRAFFIC, interface_count=4)
        assert len(many) > len(few)
        assert std.IF_IN_OCTETS.child(4) in many

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            StandardMib.group_oids("telepathy")
