"""Integration tests: the system facade, the three architectures, Figure 6
shape assertions and determinism."""

import pytest

from repro.baselines.centralized import MANAGER_HOST, centralized_spec, default_devices
from repro.baselines.driver import (
    expected_report_count,
    run_architecture,
    run_figure6,
)
from repro.baselines.multiagent import multiagent_spec
from repro.core.system import GridManagementSystem, GridTopologySpec, HostSpec
from repro.evaluation.accounting import compare_reports
from repro.simkernel.resources import ResourceKind


class TestSpecValidation:
    def test_requires_devices_and_hosts(self):
        with pytest.raises(ValueError):
            GridTopologySpec(
                devices=[], collector_hosts=[HostSpec("c")],
                analysis_hosts=[HostSpec("a")],
                storage_host=HostSpec("s"), interface_host=HostSpec("i"),
            )
        with pytest.raises(ValueError):
            GridTopologySpec(
                devices=default_devices(1), collector_hosts=[],
                analysis_hosts=[HostSpec("a")],
                storage_host=HostSpec("s"), interface_host=HostSpec("i"),
            )

    def test_fetch_timeout_derived_from_job_timeout(self):
        # Default: the whole retry ladder fits in half the job timeout,
        # so a slow fetch ladder can never outlive its own job.
        spec = GridTopologySpec.paper_figure6c(job_timeout=60.0)
        assert spec.fetch_retries == 2
        assert spec.fetch_timeout == pytest.approx(
            60.0 / (2.0 * (spec.fetch_retries + 1)))
        assert (spec.fetch_timeout * (spec.fetch_retries + 1)
                < spec.job_timeout)

    def test_fetch_timeout_ladder_must_fit_job_timeout(self):
        with pytest.raises(ValueError, match="job_timeout"):
            GridTopologySpec.paper_figure6c(
                job_timeout=30.0, fetch_timeout=10.0, fetch_retries=2)

    def test_fetch_parameter_validation(self):
        with pytest.raises(ValueError, match="fetch_retries"):
            GridTopologySpec.paper_figure6c(fetch_retries=-1)
        with pytest.raises(ValueError, match="fetch_timeout"):
            GridTopologySpec.paper_figure6c(fetch_timeout=0.0)

    def test_fetch_settings_reach_analyzers(self):
        system = GridManagementSystem(GridTopologySpec.paper_figure6c(
            job_timeout=60.0, fetch_timeout=5.0, fetch_retries=3))
        for analyzer in system.analyzers:
            assert analyzer.fetch_timeout == 5.0
            assert analyzer.fetch_retries == 3

    def test_paper_figure6c_shape(self):
        spec = GridTopologySpec.paper_figure6c()
        assert len(spec.devices) == 3
        assert len(spec.collector_hosts) == 3
        assert len(spec.analysis_hosts) == 2

    def test_centralized_spec_single_host(self):
        spec = centralized_spec()
        names = {spec.storage_host.name, spec.interface_host.name}
        names.update(h.name for h in spec.collector_hosts)
        names.update(h.name for h in spec.analysis_hosts)
        assert names == {MANAGER_HOST}
        assert spec.collector_parse_locally is False

    def test_multiagent_spec_shape(self):
        spec = multiagent_spec(collector_count=2)
        assert len(spec.collector_hosts) == 2
        assert spec.collector_hosts[0].name != MANAGER_HOST
        assert spec.analysis_hosts[0].name == MANAGER_HOST
        assert spec.collector_parse_locally is True


class TestSystemFacade:
    def test_builds_expected_topology(self):
        system = GridManagementSystem(GridTopologySpec.paper_figure6c())
        assert len(system.devices) == 3
        assert len(system.collectors) == 3
        assert len(system.analyzers) == 2
        host_roles = {h.name: h.role for h in system.management_hosts()}
        assert host_roles["storage1"] == "storage"
        assert "dev1" not in host_roles

    def test_colocated_roles_become_manager(self):
        system = GridManagementSystem(centralized_spec())
        assert system.network.host(MANAGER_HOST).role == "manager"
        assert len(system.management_hosts()) == 1

    def test_make_paper_goals_layout(self):
        system = GridManagementSystem(GridTopologySpec.paper_figure6c())
        goals = system.make_paper_goals(polls_per_type=10)
        assert len(goals) == 30
        by_type = {}
        for goal in goals:
            by_type.setdefault(goal.request_type, []).append(goal)
        assert {k: len(v) for k, v in by_type.items()} == \
            {"A": 10, "B": 10, "C": 10}
        devices = {goal.device_name for goal in goals}
        assert devices == {"dev1", "dev2", "dev3"}

    def test_assign_goals_round_robins(self):
        system = GridManagementSystem(GridTopologySpec.paper_figure6c())
        system.assign_goals(system.make_paper_goals(polls_per_type=10))
        counts = [len(c.goals) + c._active_goals for c in system.collectors]
        # 30 goals over 3 collectors -> 10 each (goals list stays empty,
        # runtime adds count via _active_goals)
        assert all(c._active_goals == 10 for c in system.collectors)

    def test_expected_report_count(self):
        assert expected_report_count(30, None) == 1
        assert expected_report_count(30, 30) == 1
        assert expected_report_count(30, 6) == 5
        assert expected_report_count(1, 6) == 1


class TestFigure6Shape:
    """The headline reproduction: the qualitative claims of Figure 6."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_figure6(polls_per_type=4, seed=11, timeout=2000)

    def test_all_architectures_complete(self, results):
        assert all(result.completed for result in results.values())
        assert all(result.records_analyzed == 12
                   for result in results.values())

    def test_centralized_manager_is_cpu_bottleneck(self, results):
        ordering = compare_reports(
            [r.report for r in results.values()], ResourceKind.CPU)
        assert [entry["label"] for entry in ordering] == \
            ["grid", "multiagent", "centralized"]

    def test_centralized_has_highest_manager_network(self, results):
        central_net = results["centralized"].report.host(
            MANAGER_HOST).net_units
        multi_net = results["multiagent"].report.host(MANAGER_HOST).net_units
        assert central_net > 2 * multi_net

    def test_multiagent_manager_still_bottleneck(self, results):
        report = results["multiagent"].report
        assert report.bottleneck().host_name == MANAGER_HOST

    def test_grid_spreads_load(self, results):
        grid = results["grid"].report
        central = results["centralized"].report
        # max per-host CPU in the grid is far below the centralized manager
        assert grid.max_host(ResourceKind.CPU)[1] < \
            0.5 * central.max_host(ResourceKind.CPU)[1]
        # and total work is comparable (within 25%): the win is placement,
        # not doing less work
        assert grid.total_units(ResourceKind.CPU) == pytest.approx(
            central.total_units(ResourceKind.CPU), rel=0.25)

    def test_grid_wins_makespan(self, results):
        assert results["grid"].makespan < results["multiagent"].makespan
        assert results["multiagent"].makespan < \
            results["centralized"].makespan

    def test_storage_host_owns_disk_in_grid(self, results):
        grid = results["grid"].report
        host_name, _ = grid.max_host(ResourceKind.DISK)
        assert host_name == "storage1"


class TestDeterminism:
    def test_same_seed_identical_reports(self):
        first = run_architecture(
            centralized_spec(seed=9, dataset_threshold=6), "c",
            polls_per_type=2, timeout=2000)
        second = run_architecture(
            centralized_spec(seed=9, dataset_threshold=6), "c",
            polls_per_type=2, timeout=2000)
        assert first.makespan == second.makespan
        for row_a, row_b in zip(first.report, second.report):
            assert row_a.units == row_b.units
        findings_a = [(f.kind, f.device) for f in first.findings]
        findings_b = [(f.kind, f.device) for f in second.findings]
        assert findings_a == findings_b

    def test_different_seed_changes_device_readings(self):
        first = run_architecture(
            centralized_spec(seed=1, dataset_threshold=6), "c",
            polls_per_type=2, timeout=2000)
        second = run_architecture(
            centralized_spec(seed=2, dataset_threshold=6), "c",
            polls_per_type=2, timeout=2000)
        store_a = first.system.store
        store_b = second.system.store
        assert store_a.history("dev1", "cpu_load") != \
            store_b.history("dev1", "cpu_load")
