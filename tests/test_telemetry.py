"""Tests for the causal tracing + telemetry subsystem (flight recorder).

Covers the span recorder primitives, the kernel profiler, windowed
time-series snapshots, labelled metrics, Chrome-trace export, the
end-to-end span chain through a real grid run, determinism of identical
seeded runs, and -- crucially -- that telemetry is *passive*: a run with
the recorder attached produces exactly the same simulation as one without.
"""

import json

import pytest

from repro.core.system import (
    DeviceSpec,
    GridManagementSystem,
    GridTopologySpec,
    HostSpec,
)
from repro.network.topology import LinkSpec
from repro.simkernel.metrics import MetricRegistry, TimeSeries
from repro.simkernel.simulator import Simulator
from repro.simkernel.telemetry import (
    KernelProfiler,
    SpanRecorder,
    StreamingTraceExporter,
    Telemetry,
    TERMINAL_STATUSES,
    load_streaming_trace,
)


class _Clock:
    """Minimal sim stand-in: the recorder only reads ``now``."""

    def __init__(self):
        self.now = 0.0


class TestSpanRecorder:
    def test_start_end_records_interval_and_status(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        trace = recorder.new_trace()
        span = recorder.start("collect", trace, grid="collector",
                              host="h1", agent="c1", records=3)
        assert span.status == "open"
        assert span.t_end is None
        clock.now = 2.5
        recorder.end(span, records_stored=3)
        assert span.status == "ok"
        assert span.duration == 2.5
        assert span.detail == {"records": 3, "records_stored": 3}

    def test_end_by_id_and_first_end_wins(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        span = recorder.start("ship", recorder.new_trace())
        clock.now = 1.0
        recorder.end(span.span_id, status="ok")
        clock.now = 5.0
        # a late dead-letter for an already-delivered envelope must not
        # overwrite the outcome that actually happened first
        recorder.end(span.span_id, status="dead-letter")
        assert span.status == "ok"
        assert span.t_end == 1.0

    def test_end_tolerates_none_and_unknown_ids(self):
        recorder = SpanRecorder(_Clock())
        assert recorder.end(None) is None
        assert recorder.end(12345) is None

    def test_capacity_rejects_new_spans_keeping_chains_intact(self):
        recorder = SpanRecorder(_Clock(), capacity=2)
        trace = recorder.new_trace()
        first = recorder.start("a", trace)
        second = recorder.start("b", trace, parent=first)
        third = recorder.start("c", trace, parent=second)
        assert third is None
        assert recorder.dropped == 1
        assert len(recorder) == 2
        # everything stored still has its parent stored too
        assert recorder.orphan_spans() == []

    def test_deterministic_id_allocation(self):
        first = SpanRecorder(_Clock())
        second = SpanRecorder(_Clock())
        for recorder in (first, second):
            trace = recorder.new_trace()
            recorder.start("x", trace)
            recorder.start("y", recorder.new_trace())
        assert [s.key() for s in first.spans] == \
               [s.key() for s in second.spans]

    def test_orphan_detection_on_missing_parent_and_link(self):
        recorder = SpanRecorder(_Clock())
        trace = recorder.new_trace()
        orphan = recorder.start("classify", trace, parent=999)
        linked = recorder.start("notify", trace)
        recorder.link(linked, [(trace, 777)])
        orphans = recorder.orphan_spans()
        assert orphan in orphans
        assert linked in orphans

    def test_find_children_and_counts(self):
        recorder = SpanRecorder(_Clock())
        trace = recorder.new_trace()
        parent = recorder.start("ship", trace)
        child = recorder.start("classify", trace, parent=parent)
        recorder.end(child)
        assert recorder.find(name="classify") == [child]
        assert recorder.find(trace_id=trace) == [parent, child]
        assert recorder.find(status="open") == [parent]
        assert recorder.children_of(parent) == [child]
        assert recorder.counts_by_name() == {"ship": 1, "classify": 1}
        assert recorder.trace_count == 1

    def test_pipeline_report_complete_and_terminal_chains(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        # chain 1: full pipeline
        t1 = recorder.new_trace()
        collect = recorder.start("collect", t1)
        recorder.end(collect)
        ship = recorder.start("ship", t1, parent=collect)
        recorder.end(ship)
        classify = recorder.start("classify", t1, parent=ship)
        recorder.end(classify)
        notify = recorder.start("notify", t1, parent=classify)
        recorder.end(notify)
        report = recorder.start("report", t1, parent=notify)
        recorder.end(report)
        # chain 2: dead-lettered in flight -- terminal, counts complete
        t2 = recorder.new_trace()
        collect2 = recorder.start("collect", t2)
        recorder.end(collect2)
        ship2 = recorder.start("ship", t2, parent=collect2)
        recorder.end(ship2, status="dead-letter")
        assert ship2.status in TERMINAL_STATUSES
        # chain 3: classified but its dataset never published
        t3 = recorder.new_trace()
        collect3 = recorder.start("collect", t3)
        recorder.end(collect3)
        ship3 = recorder.start("ship", t3, parent=collect3)
        recorder.end(ship3)
        classify3 = recorder.start("classify", t3, parent=ship3)
        recorder.end(classify3)
        outcome = recorder.pipeline_report()
        assert outcome["batches"] == 3
        assert outcome["complete"] == 2
        assert outcome["incomplete"] == [
            (t3, "classify", "dataset never published")]
        assert outcome["orphans"] == []

    def test_pipeline_report_follows_merge_links(self):
        recorder = SpanRecorder(_Clock())
        ships, classifies = [], []
        for _ in range(2):
            trace = recorder.new_trace()
            ship = recorder.start("ship", trace)
            recorder.end(ship)
            classify = recorder.start("classify", trace, parent=ship)
            recorder.end(classify)
            ships.append(ship)
            classifies.append(classify)
        # one dataset merges both batches: parent = first contributor,
        # links = the rest
        notify = recorder.start("notify", classifies[0].trace_id,
                                parent=classifies[0])
        recorder.link(
            notify, [(classifies[1].trace_id, classifies[1].span_id)])
        recorder.end(notify)
        report = recorder.start("report", notify.trace_id, parent=notify)
        recorder.end(report)
        outcome = recorder.pipeline_report()
        assert outcome["batches"] == 2
        assert outcome["complete"] == 2
        assert outcome["orphans"] == []


class TestChromeTraceExport:
    def test_export_is_valid_trace_event_format(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        trace = recorder.new_trace()
        span = recorder.start("collect", trace, grid="collector",
                              host="h1", agent="c1")
        clock.now = 0.25
        recorder.end(span)
        still_open = recorder.start("ship", trace, parent=span,
                                    grid="collector", host="h1", agent="c1")
        clock.now = 1.0
        payload = recorder.to_chrome_trace()
        json.dumps(payload)  # must be JSON-serializable as-is
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert meta  # process_name / thread_name rows present
        first = complete[0]
        assert first["ts"] == 0.0 and first["dur"] == 0.25 * 1e6
        assert isinstance(first["pid"], int)
        assert isinstance(first["tid"], int)
        assert first["args"]["trace_id"] == trace
        # the open span exports with a provisional end and open status
        second = complete[1]
        assert second["args"]["status"] == "open"
        assert second["dur"] == (1.0 - still_open.t_start) * 1e6
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        assert "h1" in names

    def test_summary_rows_aggregate_per_name(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        trace = recorder.new_trace()
        done = recorder.start("collect", trace)
        clock.now = 2.0
        recorder.end(done)
        recorder.start("collect", trace)
        rows = recorder.summary_rows()
        assert rows == [("collect", 2, 1, 2.0)]


class TestTimeSeriesSnapshot:
    def _series(self, count=100):
        series = TimeSeries("q")
        for index in range(count):
            series.record(float(index), index * 10)
        return series

    def test_full_copy_by_default(self):
        series = self._series(10)
        copy = series.snapshot()
        assert copy == series.points
        assert copy is not series.points

    def test_window_keeps_trailing_points_only(self):
        series = self._series(100)
        tail = series.snapshot(window=4.0)
        assert tail == [(t, v) for t, v in series.points if t >= 95.0]

    def test_max_points_decimates_keeping_first_and_last(self):
        series = self._series(100)
        decimated = series.snapshot(max_points=10)
        assert len(decimated) == 10
        assert decimated[0] == series.points[0]
        assert decimated[-1] == series.points[-1]
        assert decimated == sorted(decimated)

    def test_window_and_max_points_compose(self):
        series = self._series(1000)
        bounded = series.snapshot(window=500.0, max_points=5)
        assert len(bounded) == 5
        assert bounded[0][0] >= 499.0
        assert bounded[-1] == series.points[-1]

    def test_max_points_larger_than_series_is_full_copy(self):
        series = self._series(5)
        assert series.snapshot(max_points=50) == series.points

    def test_single_point_budget_returns_last(self):
        series = self._series(10)
        assert series.snapshot(max_points=1) == [series.points[-1]]

    def test_validation(self):
        series = self._series(5)
        with pytest.raises(ValueError):
            series.snapshot(window=-1.0)
        with pytest.raises(ValueError):
            series.snapshot(max_points=0)

    def test_registry_snapshot_routes_series_bounds(self):
        registry = MetricRegistry()
        series = registry.series("depth")
        for index in range(50):
            series.record(float(index), index)
        snap = registry.snapshot(series_max_points=5)
        assert len(snap["series"]["depth"]) == 5


class TestLabeledMetrics:
    def test_labels_canonicalized_into_name(self):
        registry = MetricRegistry()
        counter = registry.counter("reliable.sent",
                                   {"host": "h1", "grid": "network"})
        counter.inc(3)
        snap = registry.snapshot()
        assert snap["counters"]["reliable.sent{grid=network,host=h1}"] == 3.0

    def test_same_labels_same_instance(self):
        registry = MetricRegistry()
        first = registry.counter("x", {"a": "1"})
        second = registry.counter("x", {"a": "1"})
        other = registry.counter("x", {"a": "2"})
        assert first is second
        assert first is not other


class TestKernelProfiler:
    def test_accounts_callbacks_by_qualname(self):
        sim = Simulator(seed=1)
        profiler = KernelProfiler()
        sim.set_profiler(profiler)

        def tick():
            pass

        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, tick)
        sim.run()
        qualnames = [name for name, _, _ in profiler.top()]
        assert any("tick" in name for name in qualnames)
        snap = profiler.snapshot()
        tick_key = next(name for name in snap if "tick" in name)
        assert snap[tick_key]["count"] == 3
        assert snap[tick_key]["total_seconds"] >= 0.0

    def test_profiler_off_by_default(self):
        sim = Simulator(seed=1)
        assert sim._profiler is None

    def test_telemetry_profile_flag_installs(self):
        sim = Simulator(seed=1)
        telemetry = Telemetry(sim, profile=True)
        assert sim._profiler is telemetry.profiler
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert "kernel_profile" in telemetry.metrics_snapshot()


def _grid_spec(seed=7, telemetry=True, **overrides):
    parameters = dict(
        devices=[DeviceSpec("dev1", "server", "field"),
                 DeviceSpec("dev2", "router", "field")],
        collector_hosts=[HostSpec("col1", "field")],
        analysis_hosts=[HostSpec("inf1", "mgmt"), HostSpec("inf2", "mgmt")],
        storage_host=HostSpec("stor", "mgmt"),
        interface_host=HostSpec("iface", "mgmt"),
        seed=seed,
        dataset_threshold=6,
        telemetry=telemetry,
    )
    parameters.update(overrides)
    return GridTopologySpec(**parameters)


def _run(system, polls_per_type=4, timeout=600.0):
    system.assign_goals(system.make_paper_goals(polls_per_type=polls_per_type))
    completed = system.run_until_records(polls_per_type * 3, timeout=timeout)
    system.stop_devices()
    return completed


class TestGridTelemetry:
    def test_off_by_default(self):
        system = GridManagementSystem(_grid_spec(telemetry=False))
        assert system.telemetry is None
        assert system.platform.telemetry is None
        assert system.collectors[0].telemetry is None

    def test_full_pipeline_spans_with_zero_orphans(self):
        system = GridManagementSystem(_grid_spec(reliability=True))
        assert _run(system)
        recorder = system.telemetry.recorder
        counts = recorder.counts_by_name()
        for stage in ("collect", "ship", "classify", "notify",
                      "dispatch", "analyze", "report"):
            assert counts.get(stage, 0) > 0, "missing %s spans" % stage
        outcome = system.telemetry.pipeline_report()
        assert outcome["batches"] > 0
        assert outcome["complete"] == outcome["batches"]
        assert outcome["incomplete"] == []
        assert outcome["orphans"] == []
        assert outcome["open"] == []

    def test_span_causality_follows_figure2(self):
        system = GridManagementSystem(_grid_spec())
        assert _run(system)
        recorder = system.telemetry.recorder
        for ship in recorder.find(name="ship"):
            parent = recorder.get(ship.parent_id)
            assert parent.name == "collect"
            assert parent.trace_id == ship.trace_id
        for analyze in recorder.find(name="analyze"):
            assert recorder.get(analyze.parent_id).name == "dispatch"
        for dispatch in recorder.find(name="dispatch"):
            assert recorder.get(dispatch.parent_id).name == "notify"
        for report in recorder.find(name="report"):
            assert recorder.get(report.parent_id).name == "notify"

    def test_identical_seeded_runs_produce_identical_span_trees(self):
        first = GridManagementSystem(_grid_spec(seed=11))
        second = GridManagementSystem(_grid_spec(seed=11))
        _run(first)
        _run(second)
        # Dataset and job ids come from process-global counters (like
        # FIPA conversation ids), so two runs in one process label them
        # differently; canonicalize to first-seen order before comparing
        # -- everything else must match exactly.
        def keys(system):
            rename = {}
            rows = []
            for span in system.telemetry.recorder.spans:
                detail = dict(span.detail)
                for slot in ("dataset", "job_id"):
                    value = detail.get(slot)
                    if value is not None:
                        detail[slot] = rename.setdefault(
                            value, "%s#%d" % (slot, len(rename)))
                rows.append(span.key()[:-1] + (tuple(sorted(detail.items())),))
            return rows

        first_keys = keys(first)
        second_keys = keys(second)
        assert first_keys == second_keys
        assert first_keys  # non-vacuous

    def test_telemetry_is_passive_same_simulation_either_way(self):
        """A run with the recorder on is simulation-identical to one with
        it off: same clock, same reports, same resource accounting."""
        with_telemetry = GridManagementSystem(_grid_spec(seed=13))
        without = GridManagementSystem(_grid_spec(seed=13, telemetry=False))
        _run(with_telemetry)
        _run(without)
        assert with_telemetry.sim.now == without.sim.now
        assert len(with_telemetry.interface.reports) == \
               len(without.interface.reports)
        assert [r.records_analyzed for r in with_telemetry.interface.reports] \
               == [r.records_analyzed for r in without.interface.reports]
        first_report = with_telemetry.utilization_report().as_rows()
        second_report = without.utilization_report().as_rows()
        assert first_report == second_report

    def test_dead_lettered_batch_gets_terminal_ship_span(self):
        # Kill the storage host before any batch can cross the WAN: every
        # ship envelope exhausts its retries and must surface as an
        # explicit dead-letter span, never a silent gap in the trace.
        system = GridManagementSystem(_grid_spec(
            seed=3,
            reliability={"ack_timeout": 0.5, "max_attempts": 2},
            wan=LinkSpec(latency=0.05, bandwidth=1000.0, loss_rate=0.0),
        ))
        system.network.hosts["stor"].fail()
        system.assign_goals(system.make_paper_goals(polls_per_type=2))
        system.run(until=120.0)
        system.stop_devices()
        recorder = system.telemetry.recorder
        dead = recorder.find(name="ship", status="dead-letter")
        assert dead
        assert all(span.status in TERMINAL_STATUSES for span in dead)
        assert recorder.orphan_spans() == []
        outcome = system.telemetry.pipeline_report()
        assert outcome["complete"] == outcome["batches"]
        # the channel's accounting surfaced as registered metrics
        snap = system.telemetry.metrics_snapshot()
        assert snap["registry"]["counters"][
            "reliable.dead_letters{grid=network}"] >= 1

    def test_metrics_snapshot_has_labelled_sources(self):
        system = GridManagementSystem(_grid_spec(reliability=True))
        assert _run(system)
        snap = system.telemetry.metrics_snapshot()
        json.dumps(snap)  # JSON-ready
        grids = {source["labels"]["grid"] for source in snap["sources"]}
        assert {"collector", "classifier", "processor",
                "interface", "network", "platform"} <= grids
        collector = next(s for s in snap["sources"]
                         if s["labels"]["agent"] == "collector-1")
        assert collector["metrics"]["records_shipped"] > 0
        assert snap["spans"]["recorded"] == len(system.telemetry.recorder)
        assert snap["registry"]["counters"][
            "reliable.sent{grid=network}"] > 0

    def test_chrome_trace_roundtrips_from_real_run(self):
        system = GridManagementSystem(_grid_spec())
        assert _run(system)
        payload = json.loads(json.dumps(system.telemetry.chrome_trace()))
        events = payload["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "report" for e in events)
        process_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"col1", "stor"} <= process_names

    def test_telemetry_dict_passes_options(self):
        system = GridManagementSystem(_grid_spec(
            telemetry={"capacity": 5, "profile": False}))
        assert system.telemetry.recorder.capacity == 5
        _run(system)
        assert len(system.telemetry.recorder) <= 5
        assert system.telemetry.recorder.dropped > 0

    def test_pipeline_report_surfaces_dropped_spans(self):
        system = GridManagementSystem(_grid_spec(telemetry={"capacity": 5}))
        _run(system)
        outcome = system.telemetry.pipeline_report()
        assert outcome["dropped"] == system.telemetry.recorder.dropped
        assert outcome["dropped"] > 0


class TestStreamingTrace:
    def _record(self, recorder, clock, count, leave_open=0):
        trace = recorder.new_trace()
        spans = []
        for index in range(count):
            clock.now += 0.5
            span = recorder.start("stage%d" % (index % 3), trace,
                                  host="h%d" % (index % 2),
                                  agent="a%d" % (index % 4), i=index)
            spans.append(span)
        for span in spans[:count - leave_open if leave_open else count]:
            clock.now += 0.25
            recorder.end(span, extra=1)
        return spans

    def test_rotation_evicts_closed_spans_and_drops_stay_zero(self, tmp_path):
        clock = _Clock()
        recorder = SpanRecorder(clock, capacity=10)
        exporter = StreamingTraceExporter(recorder, str(tmp_path),
                                          chunk_spans=5)
        # 23 sequential spans overflow capacity=10 three times over; the
        # rotation keeps the in-memory store small and dropped at zero.
        for _ in range(23):
            self._record(recorder, clock, 1)
        assert recorder.dropped == 0
        assert len(recorder) < 10
        assert exporter.spans_exported + len(recorder) == 23
        assert len(exporter.chunks) == exporter.spans_exported // 5

    def test_finalize_exports_open_spans_provisionally(self, tmp_path):
        clock = _Clock()
        recorder = SpanRecorder(clock, capacity=100)
        exporter = StreamingTraceExporter(recorder, str(tmp_path),
                                          chunk_spans=50)
        self._record(recorder, clock, 6, leave_open=2)
        exporter.finalize()
        assert exporter.finalized
        # Open spans are still live in memory...
        assert len(recorder.open_spans()) == 2
        # ...but the sealed layout carries them with status "open".
        loaded, manifest = load_streaming_trace(str(tmp_path))
        assert manifest["finalized"] is True
        assert manifest["spans_exported"] == 4
        assert manifest["spans_open"] == 2
        assert len(loaded.open_spans()) == 2
        assert len(loaded) == 6
        # Idempotent: a second finalize adds no chunks.
        chunks = len(exporter.chunks)
        exporter.finalize()
        assert len(exporter.chunks) == chunks

    def test_loader_roundtrips_span_identity_exactly(self, tmp_path):
        clock = _Clock()
        recorder = SpanRecorder(clock, capacity=100)
        exporter = StreamingTraceExporter(recorder, str(tmp_path),
                                          chunk_spans=3)
        trace = recorder.new_trace()
        parent = recorder.start("collect", trace, grid="collector",
                                host="h1", agent="c1", records=3)
        clock.now = 1.5
        child = recorder.start("ship", trace, parent=parent, grid="collector",
                               host="h1", agent="c1")
        other = recorder.start("classify", recorder.new_trace(),
                               grid="storage", host="stor", agent="s1")
        recorder.link(other, [(trace, child.span_id)])
        for span in (parent, child, other):
            clock.now += 1.0
            recorder.end(span, ok=True)
        # chunk_spans=3 means ending the third span already rotated them
        # out of recorder.spans -- build the reference from the objects.
        expected = [(span.span_id, span.trace_id, span.parent_id, span.name,
                     span.grid, span.host, span.agent, span.t_start,
                     span.t_end, span.status, span.links, dict(span.detail))
                    for span in sorted((parent, child, other),
                                       key=lambda span: span.span_id)]
        exporter.finalize()
        loaded, _ = load_streaming_trace(str(tmp_path))
        actual = [(span.span_id, span.trace_id, span.parent_id, span.name,
                   span.grid, span.host, span.agent, span.t_start,
                   span.t_end, span.status, span.links, dict(span.detail))
                  for span in loaded.spans]
        assert actual == expected
        assert loaded.find(name="ship")[0].parent_id == parent.span_id
        assert loaded.get(other.span_id).links == ((trace, child.span_id),)

    def test_chunks_are_self_contained_chrome_traces(self, tmp_path):
        clock = _Clock()
        recorder = SpanRecorder(clock, capacity=100)
        StreamingTraceExporter(recorder, str(tmp_path), chunk_spans=4)
        self._record(recorder, clock, 9)
        recorder.exporter.finalize()
        chunk_files = sorted(tmp_path.glob("chunk-*.json"))
        assert len(chunk_files) == 3
        total = 0
        for path in chunk_files:
            payload = json.loads(path.read_text())
            for event in payload["traceEvents"]:
                assert event["ph"] == "X"
                assert event["dur"] >= 0
                assert {"trace_id", "span_id", "status",
                        "t0"} <= set(event["args"])
                total += 1
        assert total == 9

    def test_loader_rejects_non_manifest_directories(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ValueError):
            load_streaming_trace(str(tmp_path))

    def test_grid_run_streams_with_zero_drops_and_full_audit(self, tmp_path):
        # Force rotation mid-run with a tiny chunk size and a capacity the
        # unstreamed run is known to overflow (see the capacity=5 test):
        # streaming must keep dropped at zero and the on-disk audit whole.
        system = GridManagementSystem(_grid_spec(telemetry={
            "capacity": 50, "stream_dir": str(tmp_path),
            "stream_chunk_spans": 10}))
        assert _run(system)
        telemetry = system.telemetry
        telemetry.finalize()
        assert telemetry.recorder.dropped == 0
        loaded, manifest = load_streaming_trace(str(tmp_path))
        assert manifest["spans_dropped"] == 0
        assert loaded.dropped == 0
        outcome = loaded.pipeline_report()
        assert outcome["batches"] > 0
        assert outcome["complete"] == outcome["batches"]
        assert outcome["incomplete"] == []
        assert outcome["orphans"] == []
        assert outcome["dropped"] == 0
        # The streamed view matches an unstreamed run of the same seed.
        reference = GridManagementSystem(_grid_spec())
        assert _run(reference)
        reference.telemetry.finalize()
        assert (loaded.counts_by_name()
                == reference.telemetry.recorder.counts_by_name())

    def test_attribution_records_behaviour_spans(self, tmp_path):
        system = GridManagementSystem(_grid_spec(
            telemetry={"attribution": True}))
        assert _run(system)
        recorder = system.telemetry.recorder
        behaviour_spans = [span for span in recorder.spans
                           if span.trace_id == Telemetry.BEHAVIOUR_TRACE]
        assert behaviour_spans
        assert all(span.name.startswith("behaviour:")
                   for span in behaviour_spans)
        assert all(span.grid == "agents" for span in behaviour_spans)
        names = {span.detail.get("behaviour") for span in behaviour_spans}
        assert len(names) > 1  # more than one behaviour kind attributed
        # Attribution is passive: the simulation result is unchanged.
        reference = GridManagementSystem(_grid_spec())
        assert _run(reference)
        assert (system.utilization_report().render()
                == reference.utilization_report().render())


class TestCloseHooks:
    def test_hooks_fire_on_end_with_final_span_state(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        seen = []
        recorder.close_hooks.append(
            lambda span: seen.append((span.name, span.status,
                                      span.duration)))
        span = recorder.start("ship", recorder.new_trace())
        assert seen == []  # start is not a close
        clock.now = 2.0
        recorder.end(span, status="dead-letter")
        assert seen == [("ship", "dead-letter", 2.0)]
        # First-end-wins: a duplicate end must not re-fire the hook.
        clock.now = 9.0
        recorder.end(span.span_id, status="ok")
        assert len(seen) == 1

    def test_multiple_hooks_fire_in_registration_order(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        order = []
        recorder.close_hooks.append(lambda span: order.append("first"))
        recorder.close_hooks.append(lambda span: order.append("second"))
        recorder.end(recorder.start("collect", recorder.new_trace()))
        assert order == ["first", "second"]


class TestStageLatency:
    def test_histograms_cover_closed_pipeline_spans_only(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        trace = recorder.new_trace()
        ship = recorder.start("ship", trace)
        clock.now = 4.0
        recorder.end(ship)
        recorder.start("classify", trace)      # left open
        recorder.end(recorder.start("bootstrap", trace))  # not a stage
        report = recorder.stage_latency()
        assert set(report) == {"ship"}
        assert report["ship"]["count"] == 1
        assert report["ship"]["p99"] == pytest.approx(4.0, rel=0.01)

    def test_pipeline_report_carries_the_section(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        recorder.end(recorder.start("collect", recorder.new_trace()))
        report = recorder.pipeline_report()
        assert "stage_latency" in report
        assert set(report["stage_latency"]) == {"collect"}


class TestCriticalPath:
    def _chain(self, recorder, clock, durations, trace=None):
        """Build a parent->child chain with the given durations."""
        trace = trace if trace is not None else recorder.new_trace()
        parent = None
        spans = []
        for index, duration in enumerate(durations):
            start = clock.now
            span = recorder.start("stage%d" % index, trace, parent=parent)
            clock.now = start + duration
            recorder.end(span)
            spans.append(span)
            parent = span
        return trace, spans

    def test_picks_the_heaviest_root_to_leaf_chain(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        trace = recorder.new_trace()
        root = recorder.start("ship", trace)
        clock.now = 1.0
        recorder.end(root)
        light = recorder.start("classify", trace, parent=root)
        clock.now = 1.5
        recorder.end(light)
        heavy = recorder.start("dispatch", trace, parent=root)
        clock.now = 9.0
        recorder.end(heavy)
        tail = recorder.start("analyze", trace, parent=heavy)
        clock.now = 12.0
        recorder.end(tail)
        path = recorder.critical_path(trace)
        assert [span.name for span in path] == \
            ["ship", "dispatch", "analyze"]

    def test_unknown_trace_is_empty(self):
        recorder = SpanRecorder(_Clock())
        assert recorder.critical_path(999) == []

    def test_slowest_traces_rank_by_critical_path_total(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        slow_trace, _ = self._chain(recorder, clock, [5.0, 5.0])
        fast_trace, _ = self._chain(recorder, clock, [1.0])
        rows = recorder.slowest_traces(limit=5)
        assert [row[0] for row in rows] == [slow_trace, fast_trace]
        assert rows[0][1] == pytest.approx(10.0)
        assert [span.name for span in rows[0][2]] == ["stage0", "stage1"]

    def test_slowest_traces_respects_limit(self):
        clock = _Clock()
        recorder = SpanRecorder(clock)
        for _ in range(4):
            self._chain(recorder, clock, [1.0])
        assert len(recorder.slowest_traces(limit=2)) == 2
