"""Tests for the diurnal workload generator and SNMP table assembly."""

import pytest

from repro.network.topology import Network
from repro.network.transport import Transport
from repro.simkernel.simulator import Simulator
from repro.snmp.device import ManagedDevice
from repro.snmp.engine import SnmpEngine
from repro.snmp.manager import SnmpClient
from repro.snmp.mib import std
from repro.workloads.generator import RequestMix, WorkloadGenerator


class TestDiurnalGoals:
    def _goals(self, peak_fraction=0.7, seed=3):
        generator = WorkloadGenerator(seed=seed)
        return generator.diurnal_goals(
            RequestMix(40, 40, 40), ["d1", "d2"], day_length=1000.0,
            peak_fraction=peak_fraction, peak_start=0.25, peak_end=0.75,
        )

    def test_counts_and_bounds(self):
        goals = self._goals()
        assert len(goals) == 120
        assert all(0 <= goal.start_after <= 1000.0 for goal in goals)
        starts = [goal.start_after for goal in goals]
        assert starts == sorted(starts)

    def test_peak_window_holds_requested_share(self):
        goals = self._goals(peak_fraction=0.7)
        in_peak = sum(1 for goal in goals if 250.0 <= goal.start_after <= 750.0)
        assert in_peak == pytest.approx(0.7 * 120, abs=1)

    def test_off_peak_avoids_peak_window(self):
        goals = self._goals(peak_fraction=0.0)
        in_peak = sum(1 for goal in goals
                      if 250.0 < goal.start_after < 750.0)
        assert in_peak == 0

    def test_reproducible_by_seed(self):
        first = [g.start_after for g in self._goals(seed=8)]
        second = [g.start_after for g in self._goals(seed=8)]
        assert first == second

    def test_validation(self):
        generator = WorkloadGenerator(seed=1)
        with pytest.raises(ValueError):
            generator.diurnal_goals(RequestMix(1, 1, 1), ["d"], day_length=0)
        with pytest.raises(ValueError):
            generator.diurnal_goals(RequestMix(1, 1, 1), ["d"],
                                    day_length=10, peak_fraction=1.5)
        with pytest.raises(ValueError):
            generator.diurnal_goals(RequestMix(1, 1, 1), ["d"],
                                    day_length=10, peak_start=0.8,
                                    peak_end=0.2)


class TestSnmpTable:
    def test_get_table_assembles_rows(self):
        sim = Simulator(seed=4)
        network = Network(sim)
        manager = network.add_host("mgr", "site1")
        device_host = network.add_host("dev1", "site1", role="device")
        transport = Transport(network)
        device = ManagedDevice(sim, device_host, profile="router")
        SnmpEngine(device, transport)
        client = SnmpClient(manager, transport)

        def proc():
            rows = yield from client.get_table("dev1", {
                "in": std.IF_IN_OCTETS,
                "out": std.IF_OUT_OCTETS,
                "status": std.IF_OPER_STATUS,
            })
            return rows

        process = sim.spawn(proc())
        sim.run(until=200)
        rows = process.result
        assert len(rows) == device.profile.interface_count
        for index, row in rows.items():
            assert len(index) == 1
            assert set(row) == {"in", "out", "status"}
            assert row["status"] in (1, 2)
