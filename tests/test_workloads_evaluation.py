"""Unit tests for workload generation, scenarios and evaluation helpers."""

import pytest

from repro.core.system import DeviceSpec
from repro.evaluation.accounting import (
    HostUtilization,
    UtilizationReport,
    compare_reports,
)
from repro.evaluation.tables import format_number, format_table
from repro.network.topology import Network
from repro.simkernel.resources import ResourceKind
from repro.simkernel.simulator import Simulator
from repro.workloads.faults import FaultEvent
from repro.workloads.generator import RequestMix, WorkloadGenerator, goals_for_mix
from repro.workloads.scenarios import (
    crossover_scenarios,
    paper_scenario,
    partition_scenario,
    scaling_scenario,
)


class TestRequestMix:
    def test_totals_and_access(self):
        mix = RequestMix(1, 2, 3)
        assert mix.total == 6
        assert mix["B"] == 2

    def test_scaled(self):
        mix = RequestMix(10, 10, 10).scaled(0.5)
        assert mix.total == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(-1, 0, 0)


class TestGoalGeneration:
    def test_deterministic_layout(self):
        goals = goals_for_mix(RequestMix(4, 4, 4), ["d1", "d2"])
        assert len(goals) == 12
        # devices strictly alternate within each type
        type_a = [g for g in goals if g.request_type == "A"]
        assert [g.device_name for g in type_a] == ["d1", "d2", "d1", "d2"]

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError):
            goals_for_mix(RequestMix(1, 1, 1), [])

    def test_poisson_goals_bounded_and_sorted(self):
        generator = WorkloadGenerator(seed=4)
        goals = generator.poisson_goals(
            RequestMix(20, 0, 0), ["d1"], horizon=100.0)
        assert len(goals) == 20
        starts = [goal.start_after for goal in goals]
        assert starts == sorted(starts)
        assert all(0 <= start <= 100.0 for start in starts)

    def test_poisson_reproducible_by_seed(self):
        goals_a = WorkloadGenerator(seed=4).poisson_goals(
            RequestMix(5, 5, 5), ["d1", "d2"], horizon=50.0)
        goals_b = WorkloadGenerator(seed=4).poisson_goals(
            RequestMix(5, 5, 5), ["d1", "d2"], horizon=50.0)
        assert [(g.device_name, g.start_after) for g in goals_a] == \
            [(g.device_name, g.start_after) for g in goals_b]

    def test_periodic_goals_cover_devices_and_types(self):
        generator = WorkloadGenerator(seed=1)
        goals = generator.periodic_goals(["d1", "d2"], polls_per_device=3,
                                         interval=5.0)
        assert len(goals) == 6
        assert all(goal.count == 3 for goal in goals)


class TestScenarios:
    def test_paper_scenario_matches_evaluation(self):
        scenario = paper_scenario()
        assert len(scenario.devices) == 3
        assert scenario.mix.total == 30
        assert scenario.total_requests == 30

    def test_scaling_scenario_spreads_sites(self):
        scenario = scaling_scenario(6, 5, site_count=2)
        sites = {device.site for device in scenario.devices}
        assert sites == {"site1", "site2"}

    def test_crossover_scenarios_monotonic(self):
        scenarios = crossover_scenarios(points=(1, 5, 10))
        totals = [scenario.total_requests for scenario in scenarios]
        assert totals == [3, 15, 30]

    def test_scenario_validation(self):
        from repro.workloads.scenarios import Scenario

        with pytest.raises(ValueError):
            Scenario("empty", [], RequestMix())

    def test_partition_scenario_carries_fault_plan(self):
        scenario = partition_scenario(site_count=3, devices_per_site=2,
                                      partition_at=10.0, heal_after=20.0)
        assert len(scenario.devices) == 6
        assert {device.site for device in scenario.devices} == \
            {"site1", "site2", "site3"}
        assert scenario.fault_plan is not None
        [event] = scenario.fault_plan
        # default target: the last site; heals clear_after later
        assert event.kind == FaultEvent.SITE_PARTITION
        assert event.target == "site3"
        assert event.at == 10.0
        assert event.clear_after == 20.0

    def test_partition_scenario_needs_two_sites(self):
        with pytest.raises(ValueError):
            partition_scenario(site_count=1)


class TestFaultEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1, kind="cpu_runaway", target="d")
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="locusts", target="d")

    def test_clear_after_rejected_on_kill_kinds(self):
        # killed containers/agents do not resurrect
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="container_down", target="c",
                       clear_after=5.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="agent_down", target="a", clear_after=5.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="host_down", target="h", clear_after=0)
        # but host reboots and device/burst recovery are modelled
        assert FaultEvent(at=0, kind="host_down", target="h",
                          clear_after=5.0).clear_after == 5.0
        assert FaultEvent(at=0, kind="cpu_runaway", target="d",
                          clear_after=5.0).clear_after == 5.0

    def test_interface_only_on_interface_down(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="cpu_runaway", target="d", interface=0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="container_down", target="c", interface=1)
        assert FaultEvent(at=0, kind="interface_down", target="d",
                          interface=1).interface == 1

    def test_site_partition_kind_validation(self):
        # a heal is instantaneous -- it cannot itself clear
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="site_partition_heal", target="s",
                       clear_after=5.0)
        # loss_rate/interface are link/device knobs, not partition knobs
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="site_partition", target="s",
                       loss_rate=0.5)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="site_partition", target="s",
                       interface=1)
        # auto-heal via clear_after is modelled, as is an explicit heal
        assert FaultEvent(at=0, kind="site_partition", target="s",
                          clear_after=9.0).clear_after == 9.0
        assert FaultEvent(at=3, kind="site_partition_heal",
                          target="s").kind == "site_partition_heal"

    def test_loss_rate_only_on_link_loss_burst(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="link_loss_burst", target="wan")
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="link_loss_burst", target="wan",
                       loss_rate=1.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="host_down", target="h", loss_rate=0.1)
        event = FaultEvent(at=0, kind="link_loss_burst", target="wan",
                           loss_rate=0.05, clear_after=10.0)
        assert event.loss_rate == 0.05

    def test_plan_sorts_by_time(self):
        from repro.workloads.faults import FaultPlan

        plan = FaultPlan([
            FaultEvent(at=5, kind="cpu_runaway", target="d"),
            FaultEvent(at=1, kind="memory_leak", target="d"),
        ])
        assert [event.at for event in plan] == [1, 5]
        plan.add(FaultEvent(at=3, kind="disk_filling", target="d"))
        assert [event.at for event in plan] == [1, 3, 5]

    def test_chaos_plan_composition(self):
        from repro.workloads.faults import chaos_plan

        plan = chaos_plan(collector_host="col-host")
        kinds = [event.kind for event in plan]
        assert kinds == ["link_loss_burst", "container_down", "host_down"]
        assert len(chaos_plan()) == 2  # no collector host -> no host bounce


class TestChaosFaultApplication:
    def _system(self):
        from repro.core.system import (
            DeviceSpec, GridManagementSystem, GridTopologySpec, HostSpec,
        )

        spec = GridTopologySpec(
            devices=[DeviceSpec("dev1", "server", "field")],
            collector_hosts=[HostSpec("col1", "field")],
            analysis_hosts=[HostSpec("inf1", "mgmt")],
            storage_host=HostSpec("stor", "mgmt"),
            interface_host=HostSpec("iface", "mgmt"),
            seed=3,
        )
        return GridManagementSystem(spec)

    def test_container_down_kills_only_the_container(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        host = system.network.host("stor")
        # storage host carries the storage container AND the root agents
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="container_down", target="analysis-1"),
        ]))
        system.run(until=5)
        assert not system.analysis_containers[0].alive
        assert system.network.host("inf1").up  # host survives
        assert host.up

    def test_host_down_with_recovery(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="host_down", target="inf1",
                       clear_after=4.0),
        ]))
        system.run(until=2)
        assert not system.network.host("inf1").up
        system.run(until=10)
        assert system.network.host("inf1").up
        # the container itself was never killed
        assert system.analysis_containers[0].alive

    def test_agent_down_removes_single_agent(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="agent_down", target="classifier"),
        ]))
        system.run(until=5)
        assert system.platform.agent("classifier") is None
        # co-located agents in the same container keep running
        assert system.platform.agent("pg-root") is not None
        assert system.storage_container.alive

    def test_link_loss_burst_spikes_and_restores(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        original_wan = system.network.wan
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="link_loss_burst", target="wan",
                       loss_rate=0.5, clear_after=3.0),
        ]))
        system.run(until=2)
        assert system.network.wan.loss_rate == 0.5
        assert system.network.wan is not original_wan  # swapped, not mutated
        system.run(until=10)
        assert system.network.wan is original_wan

    def test_site_lan_burst(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="link_loss_burst", target="mgmt",
                       loss_rate=0.2),
        ]))
        system.run(until=2)
        assert system.network.sites["mgmt"].lan.loss_rate == 0.2

    def test_site_partition_with_auto_heal(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="site_partition", target="field",
                       clear_after=3.0),
        ]))
        system.run(until=2)
        assert system.network.partitioned_sites == {"field"}
        system.run(until=10)
        assert system.network.partitioned_sites == set()

    def test_explicit_site_partition_heal_event(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="site_partition", target="mgmt"),
            FaultEvent(at=4.0, kind="site_partition_heal", target="mgmt"),
        ]))
        system.run(until=2)
        assert system.network.partitioned_sites == {"mgmt"}
        system.run(until=10)
        assert system.network.partitioned_sites == set()

    def test_site_partition_unknown_site_raises(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        with pytest.raises(KeyError):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="site_partition", target="atlantis"),
            ]))

    def test_unknown_targets_raise_before_running(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        for kind, target in (
            ("agent_down", "ghost"),
            ("host_down", "ghost-host"),
        ):
            with pytest.raises(KeyError):
                apply_fault_plan(system, FaultPlan([
                    FaultEvent(at=1.0, kind=kind, target=target),
                ]))
        with pytest.raises(KeyError):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="link_loss_burst", target="ghost",
                           loss_rate=0.1),
            ]))


class TestKillWindowCoherence:
    """Overlapping host_down windows on one host must agree on the end."""

    def test_incompatible_overlap_rejected_at_construction(self):
        from repro.workloads.faults import FaultPlan

        with pytest.raises(ValueError, match="incompatible clear_after"):
            FaultPlan([
                FaultEvent(at=5.0, kind="host_down", target="h1",
                           clear_after=10.0),   # window [5, 15)
                FaultEvent(at=8.0, kind="host_down", target="h1",
                           clear_after=20.0),   # window [8, 28) -- overlaps
            ])

    def test_open_ended_window_conflicts_with_bounded(self):
        from repro.workloads.faults import FaultPlan

        with pytest.raises(ValueError, match="incompatible clear_after"):
            FaultPlan([
                FaultEvent(at=5.0, kind="host_down", target="h1"),
                FaultEvent(at=8.0, kind="host_down", target="h1",
                           clear_after=4.0),
            ])

    def test_add_validates_and_leaves_plan_unchanged(self):
        from repro.workloads.faults import FaultPlan

        plan = FaultPlan([
            FaultEvent(at=5.0, kind="host_down", target="h1",
                       clear_after=10.0),
        ])
        with pytest.raises(ValueError, match="incompatible clear_after"):
            plan.add(FaultEvent(at=8.0, kind="host_down", target="h1",
                                clear_after=20.0))
        assert len(plan) == 1  # rejected event was not kept

    def test_identical_end_overlap_allowed(self):
        from repro.workloads.faults import FaultPlan

        # Both windows end at t=15: no recovery races the other window.
        plan = FaultPlan([
            FaultEvent(at=5.0, kind="host_down", target="h1",
                       clear_after=10.0),
            FaultEvent(at=8.0, kind="host_down", target="h1",
                       clear_after=7.0),
        ])
        assert len(plan) == 2

    def test_sequential_windows_allowed(self):
        from repro.workloads.faults import FaultPlan

        # The rolling-upgrade pattern: down, back, down again.
        plan = FaultPlan([
            FaultEvent(at=5.0, kind="host_down", target="h1",
                       clear_after=3.0),
            FaultEvent(at=8.0, kind="host_down", target="h1",
                       clear_after=3.0),
        ])
        assert len(plan) == 2

    def test_different_hosts_may_overlap(self):
        from repro.workloads.faults import FaultPlan

        # The cascade pattern: overlapping windows, distinct hosts.
        plan = FaultPlan([
            FaultEvent(at=5.0, kind="host_down", target="h1",
                       clear_after=10.0),
            FaultEvent(at=8.0, kind="host_down", target="h2",
                       clear_after=20.0),
        ])
        assert len(plan) == 2

    def test_cascade_plan_validates_stagger(self):
        from repro.workloads.faults import cascade_plan

        with pytest.raises(ValueError):
            cascade_plan(["h1", "h2"], stagger=0.0)
        plan = cascade_plan(["h1", "h2"], start_at=10.0, stagger=6.0,
                            down_duration=15.0)
        starts = [event.at for event in plan]
        assert starts == [10.0, 16.0]
        # overlapping by design: second starts before the first clears
        assert starts[1] < starts[0] + 15.0

    def test_rolling_upgrade_plan_never_overlaps(self):
        from repro.workloads.faults import rolling_upgrade_plan

        plan = rolling_upgrade_plan(["h1", "h2"], start_at=10.0,
                                    restart_duration=5.0, wave_gap=12.0,
                                    waves=2)
        events = list(plan)
        assert len(events) == 4
        for earlier, later in zip(events, events[1:]):
            assert earlier.at + earlier.clear_after <= later.at
        with pytest.raises(ValueError, match="wave_gap"):
            rolling_upgrade_plan(["h1"], restart_duration=5.0, wave_gap=5.0)


class TestHostPartitionFaults:
    _system = TestChaosFaultApplication._system

    def test_island_target_must_be_nonempty_collection(self):
        with pytest.raises(ValueError, match="non-empty list"):
            FaultEvent(at=1.0, kind="host_partition", target="stor")
        with pytest.raises(ValueError, match="non-empty list"):
            FaultEvent(at=1.0, kind="host_partition", target=[])

    def test_island_normalised_to_sorted_tuple(self):
        event = FaultEvent(at=1.0, kind="host_partition",
                           target={"stor", "inf1"})
        assert event.target == ("inf1", "stor")

    def test_heal_rejects_clear_after(self):
        with pytest.raises(ValueError, match="instantaneous"):
            FaultEvent(at=1.0, kind="host_partition_heal", target="any",
                       clear_after=2.0)

    def test_partition_with_auto_heal(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="host_partition",
                       target=["stor", "inf1"], clear_after=3.0),
        ]))
        system.run(until=2)
        assert system.network.partitioned_hosts == {"inf1", "stor"}
        assert system.network.severed_between("stor", "col1")
        assert not system.network.severed_between("stor", "inf1")
        assert not system.network.severed_between("col1", "iface")
        system.run(until=10)
        assert system.network.partitioned_hosts == set()
        assert not system.network.severed_between("stor", "col1")

    def test_explicit_heal_event(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="host_partition", target=["stor"]),
            FaultEvent(at=4.0, kind="host_partition_heal", target="any"),
        ]))
        system.run(until=2)
        assert system.network.partitioned_hosts == {"stor"}
        system.run(until=10)
        assert system.network.partitioned_hosts == set()

    def test_unknown_island_hosts_raise_before_running(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        with pytest.raises(KeyError, match="atlantis"):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="host_partition",
                           target=["stor", "atlantis"]),
            ]))

    def test_split_brain_plan_shape(self):
        from repro.workloads.faults import split_brain_plan

        plan = split_brain_plan(["stor", "inf1"], partition_at=15.0,
                                heal_after=30.0)
        (event,) = list(plan)
        assert event.kind == "host_partition"
        assert event.target == ("inf1", "stor")
        assert event.at == 15.0
        assert event.clear_after == 30.0


class TestDiurnalSpike:
    def test_default_multiplier_replays_byte_identically(self):
        # The spike branch must draw zero RNG at multiplier 1.0, so a
        # pre-spike call signature and an explicit 1.0 produce the very
        # same goal stream.
        mix = RequestMix(10, 10, 10)
        legacy = WorkloadGenerator(seed=7).diurnal_goals(
            mix, ["d1", "d2"], day_length=60.0)
        explicit = WorkloadGenerator(seed=7).diurnal_goals(
            mix, ["d1", "d2"], day_length=60.0,
            spike_multiplier=1.0, spike_start=0.5, spike_length=0.05)
        assert [(g.device_name, g.request_type, g.start_after)
                for g in legacy] == \
               [(g.device_name, g.request_type, g.start_after)
                for g in explicit]

    def test_spike_adds_extra_goals_inside_window(self):
        mix = RequestMix(6, 6, 6)
        goals = WorkloadGenerator(seed=7).diurnal_goals(
            mix, ["d1", "d2"], day_length=100.0,
            spike_multiplier=10.0, spike_start=0.4, spike_length=0.1)
        # round(6 * 9) extra per type on top of the diurnal 6
        assert len(goals) == mix.total + 3 * round(6 * 9.0)
        in_window = [g for g in goals if 40.0 <= g.start_after <= 50.0]
        assert len(in_window) >= 3 * round(6 * 9.0)
        starts = [g.start_after for g in goals]
        assert starts == sorted(starts)

    def test_spike_validation(self):
        mix = RequestMix(2, 2, 2)
        generator = WorkloadGenerator(seed=0)
        with pytest.raises(ValueError, match="spike_multiplier"):
            generator.diurnal_goals(mix, ["d1"], day_length=10.0,
                                    spike_multiplier=0.5)
        with pytest.raises(ValueError, match="spike window"):
            generator.diurnal_goals(mix, ["d1"], day_length=10.0,
                                    spike_multiplier=10.0,
                                    spike_start=0.95, spike_length=0.2)

    def test_traffic_shape_maps_onto_generator(self):
        from repro.workloads.scenarios import TrafficShape

        shape = TrafficShape(day_length=50.0, spike_multiplier=10.0,
                             spike_start=0.4, spike_length=0.1)
        mix = RequestMix(4, 4, 4)
        shaped = shape.goals(mix, ["d1", "d2"], seed=9)
        direct = WorkloadGenerator(seed=9).diurnal_goals(
            mix, ["d1", "d2"], 50.0, spike_multiplier=10.0,
            spike_start=0.4, spike_length=0.1)
        assert [(g.device_name, g.start_after) for g in shaped] == \
               [(g.device_name, g.start_after) for g in direct]
        with pytest.raises(ValueError):
            TrafficShape(day_length=0.0)


class TestScenarioCatalog:
    def test_catalog_lists_all_four(self):
        from repro.workloads.scenarios import SCENARIO_CATALOG

        assert sorted(SCENARIO_CATALOG) == [
            "cascade", "flash_crowd", "rolling_upgrade", "split_brain"]

    def test_catalog_scenario_lookup_and_overrides(self):
        from repro.workloads.scenarios import (
            TIER_DETECTION_SURVIVES, catalog_scenario,
        )

        scenario = catalog_scenario("split_brain", heal_after=40.0)
        assert scenario.name == "split_brain"
        assert scenario.expected_tier == TIER_DETECTION_SURVIVES
        (event,) = list(scenario.fault_plan)
        assert event.clear_after == 40.0
        assert "gossip" in scenario.spec_overrides

    def test_unknown_name_lists_catalog(self):
        from repro.workloads.scenarios import catalog_scenario

        with pytest.raises(KeyError, match="cascade"):
            catalog_scenario("blackout")

    def test_unknown_tier_rejected(self):
        from repro.workloads.scenarios import Scenario

        with pytest.raises(ValueError, match="invariant tier"):
            Scenario("bad", devices=[DeviceSpec("d1", "server", "s")],
                     mix=RequestMix(1, 1, 1), expected_tier="bulletproof")

    def test_flash_crowd_multiplier_band(self):
        from repro.workloads.scenarios import flash_crowd_scenario

        for bad in (1.0, 9.9, 101.0):
            with pytest.raises(ValueError):
                flash_crowd_scenario(spike_multiplier=bad)

    def test_build_goals_prefers_traffic_shape(self):
        from repro.workloads.scenarios import flash_crowd_scenario

        scenario = flash_crowd_scenario(spike_multiplier=10.0,
                                        requests_per_type=4)
        goals = scenario.build_goals(seed=3)
        assert len(goals) > scenario.mix.total  # spike extras present

    def test_compose_downgrades_tier_and_merges_plans(self):
        from repro.workloads.faults import FaultPlan
        from repro.workloads.scenarios import (
            TIER_NO_SILENT_LOSS, Scenario, cascade_scenario,
        )

        burst = Scenario(
            "link_loss_burst",
            devices=[DeviceSpec("d1", "server", "s")],
            mix=RequestMix(1, 1, 1),
            fault_plan=FaultPlan([
                FaultEvent(at=20.0, kind="link_loss_burst", target="wan",
                           loss_rate=0.2, clear_after=15.0),
            ]),
            expected_tier=TIER_NO_SILENT_LOSS,
        )
        base = cascade_scenario()
        composed = base.compose(burst)
        assert composed.name == "cascade+link_loss_burst"
        assert composed.expected_tier == TIER_NO_SILENT_LOSS  # weaker wins
        assert len(composed.fault_plan) == \
            len(base.fault_plan) + 1
        # composition keeps the base workload
        assert composed.devices == base.devices
        assert composed.traffic is base.traffic

    def test_compose_rejects_conflicting_overrides(self):
        from repro.workloads.scenarios import Scenario, cascade_scenario

        other = Scenario(
            "conflict",
            devices=[DeviceSpec("d1", "server", "s")],
            mix=RequestMix(1, 1, 1),
            spec_overrides={"heartbeat_interval": 99.0},
        )
        with pytest.raises(ValueError, match="conflicting spec override"):
            cascade_scenario().compose(other)

    def test_compose_rejects_incoherent_merged_kill_windows(self):
        from repro.workloads.faults import FaultPlan
        from repro.workloads.scenarios import Scenario, cascade_scenario

        # inf1 is down [10, 25) in the cascade; an overlapping window
        # with a different end must be rejected at composition time.
        clashing = Scenario(
            "clash",
            devices=[DeviceSpec("d1", "server", "s")],
            mix=RequestMix(1, 1, 1),
            fault_plan=FaultPlan([
                FaultEvent(at=12.0, kind="host_down", target="inf1",
                           clear_after=30.0),
            ]),
        )
        with pytest.raises(ValueError, match="incompatible clear_after"):
            cascade_scenario().compose(clashing)


class TestAccounting:
    def _report(self, label, host_units):
        rows = [
            HostUtilization(
                name, "host",
                units={ResourceKind.CPU: cpu, ResourceKind.NET: 0.0,
                       ResourceKind.DISK: 0.0},
                busy_time={ResourceKind.CPU: cpu / 10.0},
                horizon=100.0,
            )
            for name, cpu in host_units.items()
        ]
        return UtilizationReport(label, rows, horizon=100.0, makespan=50.0)

    def test_from_hosts_reads_ledgers(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        host = network.add_host("h", "site1", role="manager")
        host.cpu.charge(30.0, "work")
        host.disk.charge(10.0, "work")
        report = UtilizationReport.from_hosts("r", [host], horizon=10.0)
        row = report.host("h")
        assert row.cpu_units == 30.0
        assert row.disk_units == 10.0
        assert row.utilization(ResourceKind.CPU) == pytest.approx(0.3)

    def test_max_host_and_bottleneck(self):
        report = self._report("r", {"a": 10.0, "b": 50.0, "c": 20.0})
        assert report.max_host(ResourceKind.CPU) == ("b", 50.0)
        assert report.bottleneck().host_name == "b"
        assert report.total_units(ResourceKind.CPU) == 80.0

    def test_balance_index_extremes(self):
        even = self._report("even", {"a": 10.0, "b": 10.0})
        skewed = self._report("skew", {"a": 20.0, "b": 0.0})
        assert even.balance_index() == pytest.approx(1.0)
        assert skewed.balance_index() == pytest.approx(0.5)
        empty = self._report("none", {"a": 0.0})
        assert empty.balance_index() == 1.0

    def test_compare_reports_sorted_by_max_host(self):
        reports = [
            self._report("heavy", {"m": 100.0}),
            self._report("light", {"x": 10.0, "y": 12.0}),
        ]
        comparison = compare_reports(reports)
        assert [entry["label"] for entry in comparison] == ["light", "heavy"]

    def test_unknown_host_raises(self):
        report = self._report("r", {"a": 1.0})
        with pytest.raises(KeyError):
            report.host("ghost")

    def test_render_contains_rows(self):
        text = self._report("r", {"a": 1.0}).render()
        assert "[r]" in text
        assert "a" in text


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(("x", "long-header"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(3.14159, digits=2) == "3.14"
