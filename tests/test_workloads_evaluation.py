"""Unit tests for workload generation, scenarios and evaluation helpers."""

import pytest

from repro.core.system import DeviceSpec
from repro.evaluation.accounting import (
    HostUtilization,
    UtilizationReport,
    compare_reports,
)
from repro.evaluation.tables import format_number, format_table
from repro.network.topology import Network
from repro.simkernel.resources import ResourceKind
from repro.simkernel.simulator import Simulator
from repro.workloads.faults import FaultEvent
from repro.workloads.generator import RequestMix, WorkloadGenerator, goals_for_mix
from repro.workloads.scenarios import (
    crossover_scenarios,
    paper_scenario,
    partition_scenario,
    scaling_scenario,
)


class TestRequestMix:
    def test_totals_and_access(self):
        mix = RequestMix(1, 2, 3)
        assert mix.total == 6
        assert mix["B"] == 2

    def test_scaled(self):
        mix = RequestMix(10, 10, 10).scaled(0.5)
        assert mix.total == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RequestMix(-1, 0, 0)


class TestGoalGeneration:
    def test_deterministic_layout(self):
        goals = goals_for_mix(RequestMix(4, 4, 4), ["d1", "d2"])
        assert len(goals) == 12
        # devices strictly alternate within each type
        type_a = [g for g in goals if g.request_type == "A"]
        assert [g.device_name for g in type_a] == ["d1", "d2", "d1", "d2"]

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError):
            goals_for_mix(RequestMix(1, 1, 1), [])

    def test_poisson_goals_bounded_and_sorted(self):
        generator = WorkloadGenerator(seed=4)
        goals = generator.poisson_goals(
            RequestMix(20, 0, 0), ["d1"], horizon=100.0)
        assert len(goals) == 20
        starts = [goal.start_after for goal in goals]
        assert starts == sorted(starts)
        assert all(0 <= start <= 100.0 for start in starts)

    def test_poisson_reproducible_by_seed(self):
        goals_a = WorkloadGenerator(seed=4).poisson_goals(
            RequestMix(5, 5, 5), ["d1", "d2"], horizon=50.0)
        goals_b = WorkloadGenerator(seed=4).poisson_goals(
            RequestMix(5, 5, 5), ["d1", "d2"], horizon=50.0)
        assert [(g.device_name, g.start_after) for g in goals_a] == \
            [(g.device_name, g.start_after) for g in goals_b]

    def test_periodic_goals_cover_devices_and_types(self):
        generator = WorkloadGenerator(seed=1)
        goals = generator.periodic_goals(["d1", "d2"], polls_per_device=3,
                                         interval=5.0)
        assert len(goals) == 6
        assert all(goal.count == 3 for goal in goals)


class TestScenarios:
    def test_paper_scenario_matches_evaluation(self):
        scenario = paper_scenario()
        assert len(scenario.devices) == 3
        assert scenario.mix.total == 30
        assert scenario.total_requests == 30

    def test_scaling_scenario_spreads_sites(self):
        scenario = scaling_scenario(6, 5, site_count=2)
        sites = {device.site for device in scenario.devices}
        assert sites == {"site1", "site2"}

    def test_crossover_scenarios_monotonic(self):
        scenarios = crossover_scenarios(points=(1, 5, 10))
        totals = [scenario.total_requests for scenario in scenarios]
        assert totals == [3, 15, 30]

    def test_scenario_validation(self):
        from repro.workloads.scenarios import Scenario

        with pytest.raises(ValueError):
            Scenario("empty", [], RequestMix())

    def test_partition_scenario_carries_fault_plan(self):
        scenario = partition_scenario(site_count=3, devices_per_site=2,
                                      partition_at=10.0, heal_after=20.0)
        assert len(scenario.devices) == 6
        assert {device.site for device in scenario.devices} == \
            {"site1", "site2", "site3"}
        assert scenario.fault_plan is not None
        [event] = scenario.fault_plan
        # default target: the last site; heals clear_after later
        assert event.kind == FaultEvent.SITE_PARTITION
        assert event.target == "site3"
        assert event.at == 10.0
        assert event.clear_after == 20.0

    def test_partition_scenario_needs_two_sites(self):
        with pytest.raises(ValueError):
            partition_scenario(site_count=1)


class TestFaultEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=-1, kind="cpu_runaway", target="d")
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="locusts", target="d")

    def test_clear_after_rejected_on_kill_kinds(self):
        # killed containers/agents do not resurrect
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="container_down", target="c",
                       clear_after=5.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="agent_down", target="a", clear_after=5.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="host_down", target="h", clear_after=0)
        # but host reboots and device/burst recovery are modelled
        assert FaultEvent(at=0, kind="host_down", target="h",
                          clear_after=5.0).clear_after == 5.0
        assert FaultEvent(at=0, kind="cpu_runaway", target="d",
                          clear_after=5.0).clear_after == 5.0

    def test_interface_only_on_interface_down(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="cpu_runaway", target="d", interface=0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="container_down", target="c", interface=1)
        assert FaultEvent(at=0, kind="interface_down", target="d",
                          interface=1).interface == 1

    def test_site_partition_kind_validation(self):
        # a heal is instantaneous -- it cannot itself clear
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="site_partition_heal", target="s",
                       clear_after=5.0)
        # loss_rate/interface are link/device knobs, not partition knobs
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="site_partition", target="s",
                       loss_rate=0.5)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="site_partition", target="s",
                       interface=1)
        # auto-heal via clear_after is modelled, as is an explicit heal
        assert FaultEvent(at=0, kind="site_partition", target="s",
                          clear_after=9.0).clear_after == 9.0
        assert FaultEvent(at=3, kind="site_partition_heal",
                          target="s").kind == "site_partition_heal"

    def test_loss_rate_only_on_link_loss_burst(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="link_loss_burst", target="wan")
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="link_loss_burst", target="wan",
                       loss_rate=1.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0, kind="host_down", target="h", loss_rate=0.1)
        event = FaultEvent(at=0, kind="link_loss_burst", target="wan",
                           loss_rate=0.05, clear_after=10.0)
        assert event.loss_rate == 0.05

    def test_plan_sorts_by_time(self):
        from repro.workloads.faults import FaultPlan

        plan = FaultPlan([
            FaultEvent(at=5, kind="cpu_runaway", target="d"),
            FaultEvent(at=1, kind="memory_leak", target="d"),
        ])
        assert [event.at for event in plan] == [1, 5]
        plan.add(FaultEvent(at=3, kind="disk_filling", target="d"))
        assert [event.at for event in plan] == [1, 3, 5]

    def test_chaos_plan_composition(self):
        from repro.workloads.faults import chaos_plan

        plan = chaos_plan(collector_host="col-host")
        kinds = [event.kind for event in plan]
        assert kinds == ["link_loss_burst", "container_down", "host_down"]
        assert len(chaos_plan()) == 2  # no collector host -> no host bounce


class TestChaosFaultApplication:
    def _system(self):
        from repro.core.system import (
            DeviceSpec, GridManagementSystem, GridTopologySpec, HostSpec,
        )

        spec = GridTopologySpec(
            devices=[DeviceSpec("dev1", "server", "field")],
            collector_hosts=[HostSpec("col1", "field")],
            analysis_hosts=[HostSpec("inf1", "mgmt")],
            storage_host=HostSpec("stor", "mgmt"),
            interface_host=HostSpec("iface", "mgmt"),
            seed=3,
        )
        return GridManagementSystem(spec)

    def test_container_down_kills_only_the_container(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        host = system.network.host("stor")
        # storage host carries the storage container AND the root agents
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="container_down", target="analysis-1"),
        ]))
        system.run(until=5)
        assert not system.analysis_containers[0].alive
        assert system.network.host("inf1").up  # host survives
        assert host.up

    def test_host_down_with_recovery(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="host_down", target="inf1",
                       clear_after=4.0),
        ]))
        system.run(until=2)
        assert not system.network.host("inf1").up
        system.run(until=10)
        assert system.network.host("inf1").up
        # the container itself was never killed
        assert system.analysis_containers[0].alive

    def test_agent_down_removes_single_agent(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="agent_down", target="classifier"),
        ]))
        system.run(until=5)
        assert system.platform.agent("classifier") is None
        # co-located agents in the same container keep running
        assert system.platform.agent("pg-root") is not None
        assert system.storage_container.alive

    def test_link_loss_burst_spikes_and_restores(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        original_wan = system.network.wan
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="link_loss_burst", target="wan",
                       loss_rate=0.5, clear_after=3.0),
        ]))
        system.run(until=2)
        assert system.network.wan.loss_rate == 0.5
        assert system.network.wan is not original_wan  # swapped, not mutated
        system.run(until=10)
        assert system.network.wan is original_wan

    def test_site_lan_burst(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="link_loss_burst", target="mgmt",
                       loss_rate=0.2),
        ]))
        system.run(until=2)
        assert system.network.sites["mgmt"].lan.loss_rate == 0.2

    def test_site_partition_with_auto_heal(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="site_partition", target="field",
                       clear_after=3.0),
        ]))
        system.run(until=2)
        assert system.network.partitioned_sites == {"field"}
        system.run(until=10)
        assert system.network.partitioned_sites == set()

    def test_explicit_site_partition_heal_event(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        apply_fault_plan(system, FaultPlan([
            FaultEvent(at=1.0, kind="site_partition", target="mgmt"),
            FaultEvent(at=4.0, kind="site_partition_heal", target="mgmt"),
        ]))
        system.run(until=2)
        assert system.network.partitioned_sites == {"mgmt"}
        system.run(until=10)
        assert system.network.partitioned_sites == set()

    def test_site_partition_unknown_site_raises(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        with pytest.raises(KeyError):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="site_partition", target="atlantis"),
            ]))

    def test_unknown_targets_raise_before_running(self):
        from repro.workloads.faults import FaultPlan, apply_fault_plan

        system = self._system()
        for kind, target in (
            ("agent_down", "ghost"),
            ("host_down", "ghost-host"),
        ):
            with pytest.raises(KeyError):
                apply_fault_plan(system, FaultPlan([
                    FaultEvent(at=1.0, kind=kind, target=target),
                ]))
        with pytest.raises(KeyError):
            apply_fault_plan(system, FaultPlan([
                FaultEvent(at=1.0, kind="link_loss_burst", target="ghost",
                           loss_rate=0.1),
            ]))


class TestAccounting:
    def _report(self, label, host_units):
        rows = [
            HostUtilization(
                name, "host",
                units={ResourceKind.CPU: cpu, ResourceKind.NET: 0.0,
                       ResourceKind.DISK: 0.0},
                busy_time={ResourceKind.CPU: cpu / 10.0},
                horizon=100.0,
            )
            for name, cpu in host_units.items()
        ]
        return UtilizationReport(label, rows, horizon=100.0, makespan=50.0)

    def test_from_hosts_reads_ledgers(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        host = network.add_host("h", "site1", role="manager")
        host.cpu.charge(30.0, "work")
        host.disk.charge(10.0, "work")
        report = UtilizationReport.from_hosts("r", [host], horizon=10.0)
        row = report.host("h")
        assert row.cpu_units == 30.0
        assert row.disk_units == 10.0
        assert row.utilization(ResourceKind.CPU) == pytest.approx(0.3)

    def test_max_host_and_bottleneck(self):
        report = self._report("r", {"a": 10.0, "b": 50.0, "c": 20.0})
        assert report.max_host(ResourceKind.CPU) == ("b", 50.0)
        assert report.bottleneck().host_name == "b"
        assert report.total_units(ResourceKind.CPU) == 80.0

    def test_balance_index_extremes(self):
        even = self._report("even", {"a": 10.0, "b": 10.0})
        skewed = self._report("skew", {"a": 20.0, "b": 0.0})
        assert even.balance_index() == pytest.approx(1.0)
        assert skewed.balance_index() == pytest.approx(0.5)
        empty = self._report("none", {"a": 0.0})
        assert empty.balance_index() == 1.0

    def test_compare_reports_sorted_by_max_host(self):
        reports = [
            self._report("heavy", {"m": 100.0}),
            self._report("light", {"x": 10.0, "y": 12.0}),
        ]
        comparison = compare_reports(reports)
        assert [entry["label"] for entry in comparison] == ["light", "heavy"]

    def test_unknown_host_raises(self):
        report = self._report("r", {"a": 1.0})
        with pytest.raises(KeyError):
            report.host("ghost")

    def test_render_contains_rows(self):
        text = self._report("r", {"a": 1.0}).render()
        assert "[r]" in text
        assert "a" in text


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(("x", "long-header"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("x")

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(3.14159, digits=2) == "3.14"
